//! Stand-alone CP search over the allocation model.
//!
//! This is the "CP-SAT encoding without TelaMalloc's heuristic-driven
//! search" baseline from the paper's Figure 13: a depth-first search that
//! branches on the ordering booleans `B(X, Y)` of the CP encoding with no
//! domain-specific block selection, relying on propagation to prune.
//!
//! The branching is complete: every overlapping pair must be ordered one
//! way or the other, and once all pairs are ordered the propagation
//! fixpoint's domain lower bounds form a concrete packing
//! ([`CpSolver::lower_bound_solution`]). Exhausting both branches of
//! every pair therefore proves infeasibility.

use tela_model::{Budget, Problem, SolveOutcome, SolveStats};
use tela_trace::Tracer;

use crate::ids::PairId;
use crate::solver::{CpSolver, OrderState};

/// Solves `problem` with the plain CP search, within `budget`.
///
/// Returns the outcome together with deterministic search statistics
/// (steps = ordering decisions attempted, matching the paper's step
/// metric).
///
/// # Example
///
/// ```
/// use tela_cp::search::solve_cp_only;
/// use tela_model::{examples, Budget};
///
/// let (outcome, stats) = solve_cp_only(&examples::figure1(), &Budget::steps(100_000));
/// let solution = outcome.solution().expect("figure1 is feasible");
/// assert!(solution.validate(&examples::figure1()).is_ok());
/// assert!(stats.steps > 0);
/// ```
pub fn solve_cp_only(problem: &Problem, budget: &Budget) -> (SolveOutcome, SolveStats) {
    solve_with_fixed(problem, &[], budget)
}

/// [`solve_cp_only`] with a [`Tracer`] attached: the solve is wrapped in
/// a `cp.solve` span and the solver's deterministic work counters
/// (steps, backtracks, propagations, min-feasible-position sweeps,
/// conflicts) are recorded into the tracer's metrics registry.
pub fn solve_cp_only_traced(
    problem: &Problem,
    budget: &Budget,
    tracer: &Tracer,
) -> (SolveOutcome, SolveStats) {
    solve_with_fixed_traced(problem, &[], budget, tracer)
}

/// Decides feasibility of `problem` with some buffers pre-placed at
/// fixed addresses — "encoding our problem and fixing all `pos`
/// variables that correspond to blocks that have already been placed"
/// (paper §6.3). This is the oracle query behind the imitation-learning
/// labels: it answers whether a partial search path can still be
/// extended to a full solution.
///
/// Returns `Infeasible` immediately if the fixed placements themselves
/// conflict.
///
/// # Example
///
/// ```
/// use tela_cp::search::solve_with_fixed;
/// use tela_model::{examples, Budget, BufferId};
///
/// let p = examples::tiny();
/// let (outcome, _) = solve_with_fixed(&p, &[(BufferId::new(0), 0)], &Budget::steps(10_000));
/// assert!(outcome.is_solved());
/// ```
pub fn solve_with_fixed(
    problem: &Problem,
    fixed: &[(tela_model::BufferId, tela_model::Address)],
    budget: &Budget,
) -> (SolveOutcome, SolveStats) {
    solve_with_fixed_traced(problem, fixed, budget, &Tracer::disabled())
}

/// [`solve_with_fixed`] with a [`Tracer`] attached (see
/// [`solve_cp_only_traced`] for what is recorded).
pub fn solve_with_fixed_traced(
    problem: &Problem,
    fixed: &[(tela_model::BufferId, tela_model::Address)],
    budget: &Budget,
    tracer: &Tracer,
) -> (SolveOutcome, SolveStats) {
    let span = if tracer.enabled() {
        tracer.begin(
            "cp",
            "solve",
            vec![
                ("buffers".into(), problem.len().into()),
                ("fixed".into(), fixed.len().into()),
            ],
        )
    } else {
        tela_trace::SpanId::NULL
    };
    let (outcome, stats, work) = run_search(problem, fixed, budget, tracer);
    if tracer.enabled() {
        tracer.count("cp.solves", 1);
        tracer.count("cp.steps", stats.steps);
        tracer.count("cp.backtracks.minor", stats.minor_backtracks);
        tracer.count("cp.backtracks.major", stats.major_backtracks);
        tracer.count("cp.propagations", work.propagations);
        tracer.count("cp.min_pos.queries", work.min_pos_queries);
        // The end event carries the same work counters that go to the
        // registry, so a span-tree rollup can attribute CP work to the
        // enclosing span instead of only seeing the global totals.
        tracer.end(
            span,
            "cp",
            "solve",
            vec![
                ("outcome".into(), outcome.label().into()),
                ("steps".into(), stats.steps.into()),
                ("backtracks_minor".into(), stats.minor_backtracks.into()),
                ("backtracks_major".into(), stats.major_backtracks.into()),
                ("propagations".into(), work.propagations.into()),
                ("min_pos_queries".into(), work.min_pos_queries.into()),
            ],
        );
    }
    (outcome, stats)
}

/// Deterministic work counters sampled from the solver after a search.
#[derive(Default)]
struct SearchWork {
    propagations: u64,
    min_pos_queries: u64,
}

fn run_search(
    problem: &Problem,
    fixed: &[(tela_model::BufferId, tela_model::Address)],
    budget: &Budget,
    tracer: &Tracer,
) -> (SolveOutcome, SolveStats, SearchWork) {
    let start = std::time::Instant::now();
    let mut stats = SolveStats::default();
    let mut solver = match CpSolver::new(problem) {
        Ok(s) => s,
        Err(_) => {
            stats.elapsed = start.elapsed();
            return (SolveOutcome::Infeasible, stats, SearchWork::default());
        }
    };
    solver.set_tracer(tracer.clone());
    let work = |s: &CpSolver| SearchWork {
        propagations: s.propagations(),
        min_pos_queries: s.min_pos_queries(),
    };
    for &(id, addr) in fixed {
        if solver.assign(id, addr).is_err() {
            stats.elapsed = start.elapsed();
            let w = work(&solver);
            return (SolveOutcome::Infeasible, stats, w);
        }
    }

    struct Frame {
        pair: PairId,
        first_choice: OrderState,
        exhausted: bool,
        /// Scan cursor: pairs below this index were decided when the
        /// frame was opened.
        cursor: PairId,
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut cursor = PairId::new(0);
    // A frame that failed its first branch and needs the second tried.
    let mut retry = false;

    loop {
        if budget.exhausted(stats.steps) {
            stats.elapsed = start.elapsed();
            let w = work(&solver);
            return (SolveOutcome::BudgetExceeded, stats, w);
        }
        if retry {
            retry = false;
            // INVARIANT: `retry` is only set while a frame is open (the
            // backtrack loop above clears it before popping the last
            // frame). Degrade to GaveUp rather than panic if that is ever
            // violated — the solve hot path must not unwind.
            let Some(frame) = frames.last_mut() else {
                debug_assert!(false, "retry implies an open frame");
                stats.elapsed = start.elapsed();
                let w = work(&solver);
                return (SolveOutcome::GaveUp, stats, w);
            };
            if frame.exhausted {
                // Both branches failed: backtrack further.
                frames.pop();
                match frames.last_mut() {
                    Some(parent) => {
                        solver.pop_level();
                        stats.major_backtracks += 1;
                        cursor = parent.cursor;
                        retry = true;
                        continue;
                    }
                    None => {
                        stats.elapsed = start.elapsed();
                        let w = work(&solver);
                        return (SolveOutcome::Infeasible, stats, w);
                    }
                }
            }
            frame.exhausted = true;
            let second = opposite(frame.first_choice);
            let pair = frame.pair;
            cursor = frame.cursor;
            stats.steps += 1;
            if solver.decide(pair, second).is_err() {
                stats.minor_backtracks += 1;
                retry = true;
            }
            continue;
        }

        match solver.next_undecided_pair(cursor) {
            None => {
                // INVARIANT: with every pair ordered, the propagation
                // fixpoint's lower bounds form a valid packing. Degrade to
                // GaveUp rather than panic if the encoding ever breaks it.
                let Some(solution) = solver.lower_bound_solution() else {
                    debug_assert!(false, "no undecided pair implies full ordering");
                    stats.elapsed = start.elapsed();
                    let w = work(&solver);
                    return (SolveOutcome::GaveUp, stats, w);
                };
                stats.elapsed = start.elapsed();
                let w = work(&solver);
                return (SolveOutcome::Solved(solution), stats, w);
            }
            Some(pair) => {
                let choice = preferred_order(&solver, pair);
                frames.push(Frame {
                    pair,
                    first_choice: choice,
                    exhausted: false,
                    cursor,
                });
                cursor = pair; // children rescan from here; cheap because decided pairs are skipped
                stats.steps += 1;
                if solver.decide(pair, choice).is_err() {
                    stats.minor_backtracks += 1;
                    retry = true;
                }
            }
        }
    }
}

fn opposite(state: OrderState) -> OrderState {
    match state {
        OrderState::FirstBelow => OrderState::SecondBelow,
        OrderState::SecondBelow => OrderState::FirstBelow,
        // tela-lint: allow(no-solve-path-panic, reason = "decide() rejects Undecided, so the stored first choice is always concrete")
        OrderState::Undecided => unreachable!("first choice is always concrete"),
    }
}

/// Value-ordering heuristic: put the buffer with the lower current bound
/// below; ties broken toward placing the larger buffer below.
fn preferred_order(solver: &CpSolver, pair: PairId) -> OrderState {
    let (x, y) = solver.model().pair(pair);
    let dx = solver.domain(tela_model::BufferId::new(x as usize));
    let dy = solver.domain(tela_model::BufferId::new(y as usize));
    let sx = solver.problem().buffers()[x as usize].size();
    let sy = solver.problem().buffers()[y as usize].size();
    if (dx.lo(), std::cmp::Reverse(sx)) <= (dy.lo(), std::cmp::Reverse(sy)) {
        OrderState::FirstBelow
    } else {
        OrderState::SecondBelow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer, BufferId};

    fn solve(problem: &Problem) -> (SolveOutcome, SolveStats) {
        solve_cp_only(problem, &Budget::steps(500_000))
    }

    #[test]
    fn solves_tiny() {
        let p = examples::tiny();
        let (outcome, _) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn solves_figure1_at_tight_capacity() {
        let p = examples::figure1();
        let (outcome, stats) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
        assert!(stats.steps > 0);
    }

    #[test]
    fn solves_aligned_example() {
        let p = examples::aligned();
        let (outcome, _) = solve(&p);
        let s = outcome.solution().unwrap();
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn reports_contention_infeasibility() {
        let (outcome, _) = solve(&examples::infeasible());
        assert_eq!(outcome, SolveOutcome::Infeasible);
    }

    #[test]
    fn proves_packing_infeasibility_by_search() {
        // Two overlapping 32-aligned blocks of size 8 in capacity 39: the
        // upper one would need address 32, which tops out at 40 > 39.
        let p = Problem::builder(39)
            .buffer(Buffer::new(0, 2, 8).with_align(32))
            .buffer(Buffer::new(0, 2, 8).with_align(32))
            .build()
            .unwrap();
        let (outcome, _) = solve(&p);
        assert_eq!(outcome, SolveOutcome::Infeasible);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let p = examples::figure1();
        let (outcome, stats) = solve_cp_only(&p, &Budget::steps(2));
        assert_eq!(outcome, SolveOutcome::BudgetExceeded);
        assert!(stats.steps <= 2);
    }

    #[test]
    fn empty_problem_solves_immediately() {
        let p = Problem::builder(10).build().unwrap();
        let (outcome, stats) = solve(&p);
        assert!(outcome.is_solved());
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn single_buffer_placed_at_zero() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 5, 10))
            .build()
            .unwrap();
        let (outcome, _) = solve(&p);
        assert_eq!(outcome.solution().unwrap().address(BufferId::new(0)), 0);
    }

    #[test]
    fn full_overlap_exact_fit() {
        // Ten unit-size blocks fully overlapping in capacity 10: a perfect
        // packing with zero slack.
        let p = Problem::builder(10)
            .buffers((0..10).map(|_| Buffer::new(0, 3, 1)))
            .build()
            .unwrap();
        let (outcome, _) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn disjoint_buffers_all_at_zero() {
        let p = Problem::builder(8)
            .buffers((0..5).map(|i| Buffer::new(i * 2, i * 2 + 2, 8)))
            .build()
            .unwrap();
        let (outcome, _) = solve(&p);
        let s = outcome.solution().unwrap();
        assert!(s.addresses().iter().all(|&a| a == 0));
    }

    #[test]
    fn fixed_prefix_feasible_when_consistent() {
        // Fix the known-good figure1 placements one by one; every prefix
        // must remain solvable.
        let p = examples::figure1();
        let addrs = [0u64, 2, 1, 0, 2, 3, 0, 2, 2, 0];
        for k in 0..=addrs.len() {
            let fixed: Vec<_> = (0..k).map(|i| (BufferId::new(i), addrs[i])).collect();
            let (outcome, _) = super::solve_with_fixed(&p, &fixed, &Budget::steps(500_000));
            assert!(outcome.is_solved(), "prefix {k} should be solvable");
        }
    }

    #[test]
    fn fixed_prefix_infeasible_when_conflicting() {
        // Two overlapping size-8 blocks in capacity 16: fixing the first
        // at address 4 leaves no room for the second.
        let p = Problem::builder(16)
            .buffer(Buffer::new(0, 2, 8))
            .buffer(Buffer::new(0, 2, 8))
            .build()
            .unwrap();
        let (outcome, _) =
            super::solve_with_fixed(&p, &[(BufferId::new(0), 4)], &Budget::steps(10_000));
        assert_eq!(outcome, SolveOutcome::Infeasible);
        // At address 0 it stays solvable.
        let (outcome, _) =
            super::solve_with_fixed(&p, &[(BufferId::new(0), 0)], &Budget::steps(10_000));
        assert!(outcome.is_solved());
    }

    #[test]
    fn tight_three_block_interleave_requires_search() {
        // Capacity 9: sizes 5, 3, 1 all overlapping; the size-1 block is
        // 4-aligned so it can only sit at 0, 4, or 8.
        let p = Problem::builder(9)
            .buffer(Buffer::new(1, 3, 5))
            .buffer(Buffer::new(0, 2, 3).with_align(2))
            .buffer(Buffer::new(0, 2, 1).with_align(4))
            .build()
            .unwrap();
        let (outcome, _) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
    }
}
