//! Typed `u32` index newtypes for the flat arena storage.
//!
//! Every per-buffer and per-pair array in this crate is a flat `Vec`
//! indexed by one of these ids — never a per-node `Box`/`Rc` graph. The
//! newtypes keep pair indices, variable indices, and plain counters from
//! being mixed up without costing anything at runtime: both are
//! `#[repr(transparent)]` wrappers over `u32` and every accessor is a
//! no-op after inlining.

use tela_model::BufferId;

/// Index of a position variable in the solver's flat per-buffer arrays.
///
/// One variable exists per buffer, so `VarId` and [`BufferId`] are the
/// same index space; `VarId` is the crate-internal `u32` form used to
/// keep the arena arrays compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VarId(u32);

impl VarId {
    /// Wraps a raw `u32` index.
    #[inline(always)]
    pub fn new(raw: u32) -> Self {
        VarId(raw)
    }

    /// The index as `usize`, for slice indexing.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` index.
    #[inline(always)]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The public buffer id for this variable.
    #[inline(always)]
    pub fn buffer(self) -> BufferId {
        BufferId::new(self.0 as usize)
    }
}

impl From<BufferId> for VarId {
    #[inline(always)]
    fn from(id: BufferId) -> Self {
        VarId(id.index() as u32)
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Index of an ordering pair within a [`CpModel`](crate::CpModel).
///
/// Pairs are stored sorted by their `(x, y)` buffer indices, so `PairId`
/// order is deterministic for a given problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct PairId(u32);

impl PairId {
    /// Wraps a raw `u32` index.
    #[inline(always)]
    pub fn new(raw: u32) -> Self {
        PairId(raw)
    }

    /// The index as `usize`, for slice indexing.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` index.
    #[inline(always)]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for PairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Checked access into the flat arena arrays.
///
/// Every per-buffer/per-pair/per-word array in this crate is a `Vec`
/// sized against the same problem (or bit capacity) at construction, and
/// every index flowing into it comes from that problem's ids, the
/// model's CSR rows, or the trail — all bounded by construction. This
/// trait funnels the arena indexing through two sites so the structural
/// invariant is documented (and lint-suppressed) exactly once; the
/// bounds checks stay, and the accessors compile down to plain indexing.
pub(crate) trait Arena<T> {
    /// `&self[i]`, with the arena-sizing invariant documented here.
    fn at(&self, i: usize) -> &T;
    /// `&mut self[i]`, with the arena-sizing invariant documented here.
    fn at_mut(&mut self, i: usize) -> &mut T;
}

impl<T> Arena<T> for Vec<T> {
    #[inline(always)]
    fn at(&self, i: usize) -> &T {
        // tela-lint: allow(no-solve-path-panic, reason = "arena arrays are sized to the problem at construction and indices come from the same problem's ids/CSR rows, all in bounds")
        &self[i]
    }

    #[inline(always)]
    fn at_mut(&mut self, i: usize) -> &mut T {
        // tela-lint: allow(no-solve-path-panic, reason = "arena arrays are sized to the problem at construction and indices come from the same problem's ids/CSR rows, all in bounds")
        &mut self[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_access_round_trips() {
        let mut v = vec![1, 2, 3];
        assert_eq!(*v.at(1), 2);
        *v.at_mut(2) = 9;
        assert_eq!(v, [1, 2, 9]);
    }

    #[test]
    fn var_id_round_trips_buffer_id() {
        let b = BufferId::new(7);
        let v = VarId::from(b);
        assert_eq!(v.idx(), 7);
        assert_eq!(v.raw(), 7);
        assert_eq!(v.buffer(), b);
        assert_eq!(v.to_string(), "b7");
    }

    #[test]
    fn pair_id_is_transparent() {
        let p = PairId::new(3);
        assert_eq!(p.idx(), 3);
        assert_eq!(p.raw(), 3);
        assert_eq!(p.to_string(), "p3");
        assert!(PairId::new(2) < p);
    }
}
