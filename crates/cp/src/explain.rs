//! Conflict-set minimization.
//!
//! The solver's conflict explanations ([`crate::Conflict::culprits`]) are sound
//! but coarse: they name every placed buffer adjacent to the failing
//! constraint. A smaller *irreducible* set pinpoints the placements that
//! actually matter, which sharpens conflict-guided backtracking (the
//! "second-to-last conflicting placement" of §5.4 jumps further when
//! spurious culprits are removed).
//!
//! [`minimize_conflict`] applies the classic deletion filter: drop one
//! candidate at a time and keep the drop whenever the failure still
//! reproduces from the remaining placements alone.

use tela_model::{Address, BufferId, Problem};
use tela_trace::Tracer;

use crate::solver::CpSolver;

/// A placement `(buffer, address)` as replayed during minimization.
pub type Placement = (BufferId, Address);

/// Shrinks `culprits` to an irreducible subset that still makes
/// `failing` inconsistent when replayed alone on a fresh solver.
///
/// `placements` maps every placed buffer to its address (superset of the
/// culprits). If even the full culprit set does not reproduce the
/// failure in isolation (the conflict depended on wider context), the
/// original culprit list is returned unchanged — minimization is an
/// optimization, never a soundness requirement.
///
/// # Example
///
/// ```
/// use tela_cp::explain::minimize_conflict;
/// use tela_model::{Buffer, BufferId, Problem};
///
/// // Buffers 0 and 1 are placed; only buffer 1 blocks buffer 2's
/// // placement at address 0.
/// let p = Problem::builder(10)
///     .buffer(Buffer::new(0, 2, 2))   // placed low, irrelevant
///     .buffer(Buffer::new(4, 8, 5))   // occupies [0, 5) later
///     .buffer(Buffer::new(5, 7, 4))   // would overlap buffer 1 at 0
///     .build()?;
/// let placements = [(BufferId::new(0), 0), (BufferId::new(1), 0)];
/// let culprits = vec![BufferId::new(0), BufferId::new(1)];
/// let minimal = minimize_conflict(&p, &placements, (BufferId::new(2), 0), &culprits);
/// assert_eq!(minimal, vec![BufferId::new(1)]);
/// # Ok::<(), tela_model::ProblemError>(())
/// ```
pub fn minimize_conflict(
    problem: &Problem,
    placements: &[Placement],
    failing: Placement,
    culprits: &[BufferId],
) -> Vec<BufferId> {
    minimize_conflict_traced(problem, placements, failing, culprits, &Tracer::disabled())
}

/// [`minimize_conflict`] with a [`Tracer`] attached: counts minimization
/// calls and records how many spurious culprits the deletion filter
/// removed (`cp.explain.removed` histogram).
pub fn minimize_conflict_traced(
    problem: &Problem,
    placements: &[Placement],
    failing: Placement,
    culprits: &[BufferId],
    tracer: &Tracer,
) -> Vec<BufferId> {
    let minimal = minimize_conflict_inner(problem, placements, failing, culprits);
    if tracer.enabled() {
        tracer.count("cp.explain.calls", 1);
        tracer.observe(
            "cp.explain.removed",
            (culprits.len().saturating_sub(minimal.len())) as u64,
        );
    }
    minimal
}

fn minimize_conflict_inner(
    problem: &Problem,
    placements: &[Placement],
    failing: Placement,
    culprits: &[BufferId],
) -> Vec<BufferId> {
    let address_of = |id: BufferId| -> Option<Address> {
        placements.iter().find(|&&(b, _)| b == id).map(|&(_, a)| a)
    };
    let mut kept: Vec<Placement> = culprits
        .iter()
        .filter_map(|&c| address_of(c).map(|a| (c, a)))
        .collect();
    if kept.len() != culprits.len() || !reproduces(problem, &kept, failing) {
        return culprits.to_vec();
    }
    // Deletion filter, scanning from the most recent culprit backwards so
    // early (deep-impact) placements tend to survive.
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        if kept.len() == 1 {
            break;
        }
        let removed = kept.remove(i);
        if !reproduces(problem, &kept, failing) {
            kept.insert(i, removed);
        }
    }
    kept.into_iter().map(|(b, _)| b).collect()
}

/// Does assigning `failing` conflict when exactly `placements` are fixed?
fn reproduces(problem: &Problem, placements: &[Placement], failing: Placement) -> bool {
    let Ok(mut solver) = CpSolver::new(problem) else {
        // The root itself is infeasible: any set "reproduces".
        return true;
    };
    for &(id, addr) in placements {
        if solver.assign(id, addr).is_err() {
            // The subset is itself inconsistent; treat as reproducing
            // (the failure happens at or before the probe).
            return true;
        }
    }
    solver.assign(failing.0, failing.1).is_err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::Buffer;

    fn id(i: usize) -> BufferId {
        BufferId::new(i)
    }

    #[test]
    fn irrelevant_culprits_are_dropped() {
        // Three placed buffers; only the middle one conflicts with the
        // failing placement.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 2, 4)) // time-disjoint from failing
            .buffer(Buffer::new(4, 8, 15)) // occupies [0, 15) at the time
            .buffer(Buffer::new(10, 12, 4)) // time-disjoint from failing
            .buffer(Buffer::new(5, 7, 4)) // the failing buffer
            .build()
            .unwrap();
        let placements = [(id(0), 0u64), (id(1), 0), (id(2), 0)];
        let minimal = minimize_conflict(&p, &placements, (id(3), 0), &[id(0), id(1), id(2)]);
        assert_eq!(minimal, vec![id(1)]);
    }

    #[test]
    fn minimized_set_is_irreducible_and_still_reproduces() {
        // Tight packing in capacity 13: after placing three size-4
        // blocks, the failing placement conflicts. Whatever subset the
        // filter returns must be non-empty, a subset of the original,
        // and still reproduce the failure on its own.
        let p = Problem::builder(13)
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 1))
            .build()
            .unwrap();
        let placements = [(id(0), 0u64), (id(1), 4), (id(2), 8)];
        let failing = (id(3), 4); // overlaps block 1 directly
        let original = vec![id(0), id(1), id(2)];
        let minimal = minimize_conflict(&p, &placements, failing, &original);
        assert!(!minimal.is_empty());
        assert!(minimal.iter().all(|c| original.contains(c)));
        let kept: Vec<Placement> = placements
            .iter()
            .copied()
            .filter(|(b, _)| minimal.contains(b))
            .collect();
        assert!(super::reproduces(&p, &kept, failing));
        // The direct overlap is with block 1 only.
        assert_eq!(minimal, vec![id(1)]);
    }

    #[test]
    fn single_culprit_is_stable() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 8))
            .buffer(Buffer::new(0, 4, 8))
            .build()
            .unwrap();
        let placements = [(id(0), 0u64)];
        let minimal = minimize_conflict(&p, &placements, (id(1), 0), &[id(0)]);
        assert_eq!(minimal, vec![id(0)]);
    }

    #[test]
    fn non_reproducing_conflicts_returned_unchanged() {
        // A "conflict" that does not actually reproduce in isolation: the
        // failing placement is fine given the culprits.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let placements = [(id(0), 0u64)];
        let original = vec![id(0)];
        let minimal = minimize_conflict(&p, &placements, (id(1), 8), &original);
        assert_eq!(minimal, original);
    }

    #[test]
    fn missing_placement_addresses_fall_back() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 8))
            .buffer(Buffer::new(0, 4, 8))
            .build()
            .unwrap();
        // Culprit id(0) has no recorded placement: fall back unchanged.
        let minimal = minimize_conflict(&p, &[], (id(1), 0), &[id(0)]);
        assert_eq!(minimal, vec![id(0)]);
    }
}
