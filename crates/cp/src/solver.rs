use std::cell::Cell;

use tela_model::{Address, BufferId, Problem, Solution};
use tela_trace::Tracer;

use crate::domain::Domain;
use crate::model::{CpModel, ModelError, PairId};
use crate::sweep::lowest_fit;

#[cfg(feature = "debug-invariants")]
mod invariants;

/// Counters from the `debug-invariants` runtime audit.
///
/// Without the feature both fields are always zero. With it, `checks`
/// counts individual invariant evaluations; `violations` counts the
/// ones that failed. In debug builds a violation panics immediately
/// with a structured report, so a non-zero `violations` value is only
/// observable in release builds (where the audit counts instead of
/// aborting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Individual invariant checks evaluated.
    pub checks: u64,
    /// Checks that failed.
    pub violations: u64,
}

/// Pre-decision domain bounds captured for the shrink-monotonicity
/// audit; a zero-sized placeholder when `debug-invariants` is off.
#[cfg(feature = "debug-invariants")]
type DomainsBefore = Vec<(Address, Address, bool)>;
#[cfg(not(feature = "debug-invariants"))]
type DomainsBefore = ();

#[cfg(not(feature = "debug-invariants"))]
impl CpSolver {
    #[inline(always)]
    fn audit_snapshot(&self) -> DomainsBefore {}
    #[inline(always)]
    fn audit_decision_fixpoint(&self, _before: &DomainsBefore) {}
    #[inline(always)]
    fn audit_conflict(&self, _conflict: &Conflict) {}
    #[inline(always)]
    fn audit_backtrack(&self, _target: usize) {}

    /// Invariant audit counters: always zero unless the crate is built
    /// with the `debug-invariants` feature.
    pub fn invariant_report(&self) -> InvariantReport {
        InvariantReport::default()
    }
}

/// Decision state of one ordering pair `(x, y)` (with `x < y`):
/// which buffer sits below the other in memory.
///
/// This is the CP encoding's `B(X, Y) ⊕ B(Y, X)` pair of booleans
/// (paper §5.1) collapsed into one three-valued state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderState {
    /// Neither ordering has been committed yet.
    Undecided,
    /// `pos(x) + size(x) <= pos(y)`: the lower-indexed buffer is below.
    FirstBelow,
    /// `pos(y) + size(y) <= pos(x)`: the higher-indexed buffer is below.
    SecondBelow,
}

/// A failed assignment, with the already-placed buffers implicated.
///
/// `culprits` lists fixed placements that contributed to the failure, in
/// the order they were assigned (earliest first). TelaMalloc's smart
/// backtracking jumps to the second-to-last culprit's decision level
/// (paper §5.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The buffer whose domain wiped out or that became unplaceable, when
    /// identifiable.
    pub subject: Option<BufferId>,
    /// Fixed placements implicated in the failure, in assignment order.
    pub culprits: Vec<BufferId>,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.subject {
            Some(s) => write!(f, "conflict on {s}")?,
            None => write!(f, "conflict")?,
        }
        if !self.culprits.is_empty() {
            write!(f, " implicating ")?;
            for (i, c) in self.culprits.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Conflict {}

#[derive(Debug)]
enum TrailEntry {
    Bounds {
        var: u32,
        lo: Address,
        hi: Address,
        empty: bool,
    },
    Order(PairId),
}

#[derive(Debug, Clone, Copy)]
struct LevelMark {
    trail_len: usize,
    fixed_len: usize,
}

/// Incremental constraint solver over the allocation CP model.
///
/// The solver maintains interval domains for every `pos` variable and the
/// ordering state of every time-overlapping pair, with a trail that makes
/// backtracking to any earlier decision level cheap. One *decision level*
/// is pushed per successful [`assign`](CpSolver::assign) call.
///
/// Propagation is bounds-consistent and therefore sound but incomplete:
/// a non-conflicting assignment may still be part of no solution. The
/// search layers (this crate's [`search`](crate::search) module and the
/// `telamalloc` crate) handle exhaustive exploration.
///
/// # Example
///
/// ```
/// use tela_cp::CpSolver;
/// use tela_model::{examples, BufferId};
///
/// let mut solver = CpSolver::new(&examples::tiny())?;
/// let a = BufferId::new(0);
/// let b = BufferId::new(1);
/// solver.assign(a, 0).unwrap();
/// // Buffer 1 overlaps buffer 0 in time, so its lowest feasible
/// // position is now on top of buffer 0.
/// assert_eq!(solver.min_feasible_pos(b), Some(8));
/// solver.pop_level();
/// assert_eq!(solver.min_feasible_pos(b), Some(0));
/// # Ok::<(), tela_cp::ModelError>(())
/// ```
#[derive(Debug)]
pub struct CpSolver {
    model: CpModel,
    domains: Vec<Domain>,
    orders: Vec<OrderState>,
    fixed: Vec<bool>,
    fixed_order: Vec<u32>,
    trail: Vec<TrailEntry>,
    levels: Vec<LevelMark>,
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    /// Per buffer: `(start, end, var)` address intervals of its *fixed*
    /// time-overlapping neighbors, kept sorted by the full tuple. Updated
    /// incrementally on fix/unfix so min-feasible-position queries never
    /// rebuild and re-sort the neighbor set.
    occupancy: Vec<Vec<(Address, Address, u32)>>,
    /// Address a fixed buffer was placed at, valid while `fixed[var]`;
    /// read on unfix, when the domain may already have been restored.
    placed_addr: Vec<Address>,
    propagations: u64,
    /// Count of min-feasible-position sweeps; a `Cell` because the query
    /// methods take `&self` (each search worker owns its solver, so the
    /// loss of `Sync` is harmless).
    min_pos_queries: Cell<u64>,
    tracer: Tracer,
    #[cfg(feature = "debug-invariants")]
    audit: invariants::AuditCounters,
}

impl CpSolver {
    /// Builds a solver for `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the problem is trivially infeasible (see
    /// [`CpModel::new`]).
    pub fn new(problem: &Problem) -> Result<Self, ModelError> {
        Ok(Self::from_model(CpModel::new(problem)?))
    }

    /// Builds a solver over an existing model.
    pub fn from_model(model: CpModel) -> Self {
        let problem = model.problem();
        let domains = problem
            .buffers()
            .iter()
            .map(|b| Domain::new(0, problem.capacity() - b.size(), b.align()))
            .collect::<Vec<_>>();
        let n = problem.len();
        let pair_count = model.pair_count();
        CpSolver {
            model,
            domains,
            orders: vec![OrderState::Undecided; pair_count],
            fixed: vec![false; n],
            fixed_order: Vec::with_capacity(n),
            trail: Vec::new(),
            levels: Vec::new(),
            queue: Vec::new(),
            in_queue: vec![false; n],
            occupancy: vec![Vec::new(); n],
            placed_addr: vec![0; n],
            propagations: 0,
            min_pos_queries: Cell::new(0),
            tracer: Tracer::disabled(),
            #[cfg(feature = "debug-invariants")]
            audit: invariants::AuditCounters::default(),
        }
    }

    /// Attaches a tracer: conflicts are counted and their culprit-clique
    /// sizes recorded as metrics (and, with the `trace` feature, emitted
    /// as per-conflict events). A disabled tracer — the default — costs
    /// one branch per conflict and nothing on the propagation hot loop.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer attached via [`set_tracer`](CpSolver::set_tracer)
    /// (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Number of min-feasible-position sweeps performed so far (a
    /// deterministic work counter, like
    /// [`propagations`](CpSolver::propagations)).
    pub fn min_pos_queries(&self) -> u64 {
        self.min_pos_queries.get()
    }

    /// Records a conflict into the attached tracer (no-op when the
    /// tracer is disabled).
    fn note_conflict(&self, conflict: &Conflict) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer.count("cp.conflicts", 1);
        self.tracer
            .observe("cp.conflict.clique_size", conflict.culprits.len() as u64);
        #[cfg(feature = "trace")]
        self.tracer.instant(
            "cp",
            "conflict",
            vec![
                (
                    "subject".into(),
                    conflict
                        .subject
                        .map(|s| s.index())
                        .map_or(tela_trace::Value::Str("none".to_string()), Into::into),
                ),
                ("culprits".into(), conflict.culprits.len().into()),
            ],
        );
    }

    /// The constraint model this solver operates on.
    pub fn model(&self) -> &CpModel {
        &self.model
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        self.model.problem()
    }

    /// Current decision level (number of successful assignments on the
    /// current path).
    pub fn level(&self) -> usize {
        self.levels.len()
    }

    /// Number of pair-propagation operations performed so far (a
    /// deterministic work counter for experiments).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Current domain of `id`'s position variable.
    pub fn domain(&self, id: BufferId) -> &Domain {
        &self.domains[id.index()]
    }

    /// The committed address of `id`, if it has been assigned.
    pub fn assignment(&self, id: BufferId) -> Option<Address> {
        if self.fixed[id.index()] {
            Some(self.domains[id.index()].lo())
        } else {
            None
        }
    }

    /// Returns true if `id` has been assigned.
    pub fn is_fixed(&self, id: BufferId) -> bool {
        self.fixed[id.index()]
    }

    /// Number of assigned buffers.
    pub fn fixed_count(&self) -> usize {
        self.fixed_order.len()
    }

    /// Assigned buffers in assignment order.
    pub fn fixed_in_order(&self) -> impl Iterator<Item = BufferId> + '_ {
        self.fixed_order.iter().map(|&v| BufferId::new(v as usize))
    }

    /// Unassigned buffers in id order.
    pub fn unfixed(&self) -> impl Iterator<Item = BufferId> + '_ {
        self.fixed
            .iter()
            .enumerate()
            .filter(|&(_, &f)| !f)
            .map(|(i, _)| BufferId::new(i))
    }

    /// Ordering state of the pair with index `pair`.
    pub fn order(&self, pair: PairId) -> OrderState {
        self.orders[pair as usize]
    }

    /// Assigns `id` to `addr`, pushing one decision level and running
    /// propagation.
    ///
    /// On conflict the decision level is rolled back automatically, so
    /// the solver is back in its pre-call state and another candidate can
    /// be tried — a *minor backtrack* in the paper's terms.
    ///
    /// # Errors
    ///
    /// Returns the [`Conflict`] (with implicated placements) if the
    /// assignment is inconsistent with the constraint store.
    pub fn assign(&mut self, id: BufferId, addr: Address) -> Result<(), Conflict> {
        let var = id.index() as u32;
        debug_assert!(!self.fixed[id.index()], "buffer {id} is already assigned");
        #[allow(clippy::let_unit_value)] // unit only without debug-invariants
        let before = self.audit_snapshot();
        self.levels.push(LevelMark {
            trail_len: self.trail.len(),
            fixed_len: self.fixed_order.len(),
        });
        if !self.domains[id.index()].contains(addr) {
            let conflict = self.build_conflict(Some(var), &[var]);
            self.audit_conflict(&conflict);
            self.note_conflict(&conflict);
            self.pop_level();
            return Err(conflict);
        }
        // Trail the old bounds, then fix.
        let (lo, hi, empty) = self.domains[id.index()].snapshot();
        self.trail.push(TrailEntry::Bounds { var, lo, hi, empty });
        self.domains[id.index()].fix(addr);
        self.fixed[id.index()] = true;
        self.fixed_order.push(var);
        self.occupancy_insert(var, addr);
        self.enqueue(var);
        match self.propagate() {
            Ok(()) => {
                self.audit_decision_fixpoint(&before);
                Ok(())
            }
            Err(conflict_vars) => {
                let conflict = self.build_conflict(conflict_vars.first().copied(), &conflict_vars);
                self.audit_conflict(&conflict);
                self.note_conflict(&conflict);
                self.pop_level();
                Err(conflict)
            }
        }
    }

    /// Commits an ordering decision for an undecided pair, pushing one
    /// decision level and running propagation — the boolean branching a
    /// CP-SAT solver performs on the `B(X, Y)` variables (paper §5.1).
    ///
    /// On conflict the decision level is rolled back automatically.
    ///
    /// # Errors
    ///
    /// Returns the [`Conflict`] if the decision is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if the pair is already decided or `state` is
    /// [`OrderState::Undecided`].
    pub fn decide(&mut self, pair: PairId, state: OrderState) -> Result<(), Conflict> {
        assert_eq!(
            self.orders[pair as usize],
            OrderState::Undecided,
            "pair {pair} is already decided"
        );
        let (x, y) = self.model.pair(pair);
        let (below, above) = match state {
            OrderState::FirstBelow => (x, y),
            OrderState::SecondBelow => (y, x),
            // tela-lint: allow(no-solve-path-panic, reason = "documented caller contract: deciding a pair to Undecided is API misuse, not a solve failure")
            OrderState::Undecided => panic!("cannot decide a pair to Undecided"),
        };
        #[allow(clippy::let_unit_value)] // unit only without debug-invariants
        let before = self.audit_snapshot();
        self.levels.push(LevelMark {
            trail_len: self.trail.len(),
            fixed_len: self.fixed_order.len(),
        });
        let result = self
            .decide_order(pair, state, below, above)
            .and_then(|()| self.propagate());
        match result {
            Ok(()) => {
                self.audit_decision_fixpoint(&before);
                Ok(())
            }
            Err(conflict_vars) => {
                for &v in &self.queue {
                    self.in_queue[v as usize] = false;
                }
                self.queue.clear();
                let conflict = self.build_conflict(conflict_vars.first().copied(), &conflict_vars);
                self.audit_conflict(&conflict);
                self.note_conflict(&conflict);
                self.pop_level();
                Err(conflict)
            }
        }
    }

    /// The first undecided pair with index `>= from`, if any.
    pub fn next_undecided_pair(&self, from: PairId) -> Option<PairId> {
        (from as usize..self.orders.len())
            .find(|&i| self.orders[i] == OrderState::Undecided)
            .map(|i| i as PairId)
    }

    /// When every pair is decided, the domain lower bounds form a valid
    /// solution: each decided ordering guarantees
    /// `lo(above) >= lo(below) + size(below)` at the propagation fixpoint,
    /// and bounds already respect capacity and alignment.
    ///
    /// Returns `None` while any pair remains undecided.
    pub fn lower_bound_solution(&self) -> Option<Solution> {
        if self.orders.contains(&OrderState::Undecided) {
            return None;
        }
        Some(Solution::new(self.domains.iter().map(|d| d.lo()).collect()))
    }

    /// Pops the most recent decision level. No-op at level 0.
    pub fn pop_level(&mut self) {
        let target = self.level().saturating_sub(1);
        self.pop_to_level(target);
    }

    /// Backtracks to `level`, undoing all later assignments and their
    /// propagation effects.
    ///
    /// # Panics
    ///
    /// Panics if `level` is greater than the current level.
    // tela-lint: hot-path
    pub fn pop_to_level(&mut self, level: usize) {
        assert!(level <= self.level(), "cannot pop forward to level {level}");
        // INVARIANT: the `let … else` breaks below are unreachable — the
        // loop conditions (`len() > level` / `len() > mark.trail_len`)
        // imply a poppable element. Spelled without `expect` so even an
        // impossible corruption degrades to a truncated pop instead of
        // aborting the solve.
        while self.levels.len() > level {
            let Some(mark) = self.levels.pop() else { break };
            while self.trail.len() > mark.trail_len {
                let Some(entry) = self.trail.pop() else { break };
                match entry {
                    TrailEntry::Bounds { var, lo, hi, empty } => {
                        self.domains[var as usize].restore(lo, hi, empty);
                    }
                    TrailEntry::Order(pair) => {
                        self.orders[pair as usize] = OrderState::Undecided;
                    }
                }
            }
            while self.fixed_order.len() > mark.fixed_len {
                let Some(var) = self.fixed_order.pop() else {
                    break;
                };
                self.occupancy_remove(var);
                self.fixed[var as usize] = false;
            }
        }
        // Any queued propagation work belongs to the abandoned subtree.
        for &var in &self.queue {
            self.in_queue[var as usize] = false;
        }
        self.queue.clear();
        self.audit_backtrack(level);
    }

    /// The lowest feasible aligned address for `id` given the *fixed*
    /// placements and `id`'s current domain — the paper's solver-guided
    /// placement query (§5.2).
    ///
    /// Returns `None` if no address fits. Note this ignores unfixed
    /// buffers, so `Some` does not guarantee global feasibility.
    pub fn min_feasible_pos(&self, id: BufferId) -> Option<Address> {
        self.min_feasible_pos_at_least(id, 0)
    }

    /// Like [`min_feasible_pos`](CpSolver::min_feasible_pos), but only
    /// considers addresses `>= from`. Used to enumerate successive
    /// placement candidates.
    pub fn min_feasible_pos_at_least(&self, id: BufferId, from: Address) -> Option<Address> {
        self.min_pos_queries.set(self.min_pos_queries.get() + 1);
        let d = &self.domains[id.index()];
        if d.is_empty() {
            return None;
        }
        let b = self.problem().buffer(id);
        let occupied = &self.occupancy[id.index()];
        lowest_fit(b.size(), b.align(), d.lo().max(from), d.hi(), occupied).pos
    }

    /// Checks that every unfixed buffer still has at least one feasible
    /// address with respect to the fixed placements.
    ///
    /// This is the "run the solver at every step" early-infeasibility
    /// check (§4): it catches dead ends that bounds propagation alone
    /// misses because interval domains cannot represent holes.
    ///
    /// # Errors
    ///
    /// Returns a [`Conflict`] naming the unplaceable buffer and the
    /// placements blocking it.
    pub fn check_all_placeable(&self) -> Result<(), Conflict> {
        for id in self.unfixed() {
            let d = &self.domains[id.index()];
            if d.is_empty() {
                let conflict = self.build_conflict(Some(id.index() as u32), &[id.index() as u32]);
                self.note_conflict(&conflict);
                return Err(conflict);
            }
            let b = self.problem().buffer(id);
            let occupied = &self.occupancy[id.index()];
            let result = lowest_fit(b.size(), b.align(), d.lo(), d.hi(), occupied);
            if result.pos.is_none() {
                let mut culprits: Vec<BufferId> = result
                    .blockers
                    .iter()
                    .map(|&v| BufferId::new(v as usize))
                    .collect();
                self.sort_by_assignment_order(&mut culprits);
                let conflict = Conflict {
                    subject: Some(id),
                    culprits,
                };
                self.audit_conflict(&conflict);
                self.note_conflict(&conflict);
                return Err(conflict);
            }
        }
        Ok(())
    }

    /// Extracts the complete solution once every buffer is fixed.
    pub fn solution(&self) -> Option<Solution> {
        if self.fixed_count() != self.problem().len() {
            return None;
        }
        Some(Solution::new(self.domains.iter().map(|d| d.lo()).collect()))
    }

    /// Inserts the just-fixed `var`'s address interval into every
    /// time-overlapping neighbor's sorted occupancy list.
    fn occupancy_insert(&mut self, var: u32, addr: Address) {
        self.placed_addr[var as usize] = addr;
        let size = self.problem().buffers()[var as usize].size();
        let interval = (addr, addr + size, var);
        for i in 0..self.model.pairs_of(var).len() {
            let (x, y) = self.model.pair(self.model.pairs_of(var)[i]);
            let other = if x == var { y } else { x };
            let list = &mut self.occupancy[other as usize];
            let at = list
                .binary_search(&interval)
                .expect_err("a buffer is fixed at most once");
            list.insert(at, interval);
        }
    }

    /// Removes the just-unfixed `var`'s interval from its neighbors'
    /// occupancy lists (the trail has already restored the domains, so
    /// the address comes from `placed_addr`).
    fn occupancy_remove(&mut self, var: u32) {
        let addr = self.placed_addr[var as usize];
        let size = self.problem().buffers()[var as usize].size();
        let interval = (addr, addr + size, var);
        for i in 0..self.model.pairs_of(var).len() {
            let (x, y) = self.model.pair(self.model.pairs_of(var)[i]);
            let other = if x == var { y } else { x };
            let list = &mut self.occupancy[other as usize];
            let at = list
                .binary_search(&interval)
                // tela-lint: allow(no-solve-path-panic, reason = "occupancy and fixed_order are mutated in lock-step; a missing interval is state corruption that must fail loudly, not degrade")
                .expect("fixed interval is present in neighbor lists");
            list.remove(at);
        }
    }

    fn enqueue(&mut self, var: u32) {
        if !self.in_queue[var as usize] {
            self.in_queue[var as usize] = true;
            self.queue.push(var);
        }
    }

    /// Fixpoint propagation. On conflict, returns the variables at the
    /// failing constraint.
    // tela-lint: hot-path
    fn propagate(&mut self) -> Result<(), Vec<u32>> {
        while let Some(var) = self.queue.pop() {
            self.in_queue[var as usize] = false;
            // Index-based iteration: the adjacency lists live in the
            // immutable `CpModel`, so re-borrowing per pair keeps the
            // inner loop free of the per-pop `to_vec()` allocation this
            // hot path used to pay.
            for i in 0..self.model.pairs_of(var).len() {
                let pair = self.model.pairs_of(var)[i];
                self.propagations += 1;
                if let Err(vars) = self.propagate_pair(pair) {
                    for &v in &self.queue {
                        self.in_queue[v as usize] = false;
                    }
                    self.queue.clear();
                    return Err(vars);
                }
            }
        }
        Ok(())
    }

    fn propagate_pair(&mut self, pair: PairId) -> Result<(), Vec<u32>> {
        let (x, y) = self.model.pair(pair);
        match self.orders[pair as usize] {
            OrderState::FirstBelow => self.apply_order(x, y, pair),
            OrderState::SecondBelow => self.apply_order(y, x, pair),
            OrderState::Undecided => {
                let x_possible = self.order_possible(x, y);
                let y_possible = self.order_possible(y, x);
                match (x_possible, y_possible) {
                    (false, false) => Err(vec![x, y]),
                    (true, false) => self.decide_order(pair, OrderState::FirstBelow, x, y),
                    (false, true) => self.decide_order(pair, OrderState::SecondBelow, y, x),
                    (true, true) => Ok(()),
                }
            }
        }
    }

    /// Could `below` be placed entirely under `above`?
    fn order_possible(&self, below: u32, above: u32) -> bool {
        let db = &self.domains[below as usize];
        let da = &self.domains[above as usize];
        if db.is_empty() || da.is_empty() {
            return false;
        }
        let size = self.problem().buffers()[below as usize].size();
        db.lo() + size <= da.hi()
    }

    fn decide_order(
        &mut self,
        pair: PairId,
        state: OrderState,
        below: u32,
        above: u32,
    ) -> Result<(), Vec<u32>> {
        self.orders[pair as usize] = state;
        self.trail.push(TrailEntry::Order(pair));
        self.apply_order(below, above, pair)
    }

    /// Enforces `pos(below) + size(below) <= pos(above)` on the bounds.
    fn apply_order(&mut self, below: u32, above: u32, _pair: PairId) -> Result<(), Vec<u32>> {
        let size_below = self.problem().buffers()[below as usize].size();
        // lo(above) >= lo(below) + size(below)
        let lo_bound = self.domains[below as usize].lo() + size_below;
        self.tighten(above, Some(lo_bound), None)
            .map_err(|v| vec![v, below])?;
        // hi(below) <= hi(above) - size(below)
        let hi_above = self.domains[above as usize].hi();
        let hi_bound = hi_above.checked_sub(size_below);
        match hi_bound {
            Some(bound) => self
                .tighten(below, None, Some(bound))
                .map_err(|v| vec![v, above]),
            None => Err(vec![below, above]),
        }
    }

    /// Tightens bounds with trailing; returns the wiped variable on
    /// failure.
    fn tighten(&mut self, var: u32, lo: Option<Address>, hi: Option<Address>) -> Result<(), u32> {
        let snapshot = self.domains[var as usize].snapshot();
        let mut changed = false;
        if let Some(bound) = lo {
            changed |= self.domains[var as usize].tighten_lo(bound);
        }
        if let Some(bound) = hi {
            changed |= self.domains[var as usize].tighten_hi(bound);
        }
        if changed {
            self.trail.push(TrailEntry::Bounds {
                var,
                lo: snapshot.0,
                hi: snapshot.1,
                empty: snapshot.2,
            });
            if self.domains[var as usize].is_empty() {
                return Err(var);
            }
            self.enqueue(var);
        }
        Ok(())
    }

    /// Builds a conflict whose culprits are the fixed buffers that overlap
    /// the conflicting variables in time, in assignment order.
    fn build_conflict(&self, subject: Option<u32>, vars: &[u32]) -> Conflict {
        let mut culprits: Vec<BufferId> = Vec::new();
        for &v in vars {
            if self.fixed[v as usize] {
                culprits.push(BufferId::new(v as usize));
            }
            for &pair in self.model.pairs_of(v) {
                let (x, y) = self.model.pair(pair);
                let other = if x == v { y } else { x };
                if self.fixed[other as usize] {
                    culprits.push(BufferId::new(other as usize));
                }
            }
        }
        culprits.sort_unstable();
        culprits.dedup();
        self.sort_by_assignment_order(&mut culprits);
        Conflict {
            subject: subject.map(|v| BufferId::new(v as usize)),
            culprits,
        }
    }

    fn sort_by_assignment_order(&self, culprits: &mut [BufferId]) {
        let mut rank = vec![usize::MAX; self.problem().len()];
        for (i, &v) in self.fixed_order.iter().enumerate() {
            rank[v as usize] = i;
        }
        culprits.sort_by_key(|id| rank[id.index()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer, Problem};

    fn id(i: usize) -> BufferId {
        BufferId::new(i)
    }

    #[test]
    fn assign_and_read_back() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        s.assign(id(0), 0).unwrap();
        assert_eq!(s.assignment(id(0)), Some(0));
        assert_eq!(s.level(), 1);
        assert!(s.is_fixed(id(0)));
        assert!(!s.is_fixed(id(1)));
    }

    #[test]
    fn overlapping_fixed_placement_conflicts() {
        // Two fully-overlapping buffers cannot share address 0.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 8))
            .buffer(Buffer::new(0, 4, 8))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        let err = s.assign(id(1), 4).unwrap_err();
        assert!(err.culprits.contains(&id(0)));
        // The failed level was rolled back.
        assert_eq!(s.level(), 1);
        assert!(!s.is_fixed(id(1)));
        // A consistent address still works.
        s.assign(id(1), 8).unwrap();
        assert_eq!(s.level(), 2);
    }

    #[test]
    fn propagation_tightens_via_decided_orders() {
        // Capacity 10, two overlapping buffers of sizes 6 and 4: placing
        // the size-6 buffer at 0 forces the other to [6, 6].
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        let d = s.domain(id(1));
        assert_eq!((d.lo(), d.hi()), (6, 6));
    }

    #[test]
    fn propagation_chain_across_three_buffers() {
        // Sizes 4,4,4 in capacity 12, all overlapping: fixing the first at
        // 0 and the second at 4 forces the third to 8.
        let p = Problem::builder(12)
            .buffers((0..3).map(|_| Buffer::new(0, 2, 4)))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 4).unwrap();
        let d = s.domain(id(2));
        assert_eq!((d.lo(), d.hi()), (8, 8));
        s.assign(id(2), 8).unwrap();
        let solution = s.solution().unwrap();
        assert!(solution.validate(&p).is_ok());
        // Regression guard for the propagation hot loop: this sequence
        // performs exactly 12 pair propagations. A change to the
        // fixpoint loop (work scheduling, duplicate enqueueing, missed
        // dedup) shows up here as a different deterministic count.
        assert_eq!(s.propagations(), 12);
    }

    #[test]
    fn pop_level_restores_domains_and_orders() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        let before = (s.domain(id(1)).lo(), s.domain(id(1)).hi());
        s.assign(id(0), 0).unwrap();
        assert_ne!((s.domain(id(1)).lo(), s.domain(id(1)).hi()), before);
        s.pop_level();
        assert_eq!((s.domain(id(1)).lo(), s.domain(id(1)).hi()), before);
        assert_eq!(s.level(), 0);
        assert_eq!(s.fixed_count(), 0);
        assert_eq!(s.order(0), OrderState::Undecided);
    }

    #[test]
    fn pop_to_level_jumps_multiple_levels() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 8).unwrap();
        s.assign(id(2), 0).unwrap();
        assert_eq!(s.level(), 3);
        s.pop_to_level(1);
        assert_eq!(s.level(), 1);
        assert!(s.is_fixed(id(0)));
        assert!(!s.is_fixed(id(1)));
        assert!(!s.is_fixed(id(2)));
    }

    #[test]
    fn min_feasible_pos_sees_holes() {
        // A fixed buffer in the middle: bounds propagation cannot exclude
        // the occupied band, but the sweep finds the hole below it.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 4)) // will sit at [8, 12)
            .buffer(Buffer::new(0, 4, 6))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 8).unwrap();
        // Size-6 buffer fits below the hole at [0, 6)? 6 <= 8, yes.
        assert_eq!(s.min_feasible_pos(id(1)), Some(0));
        // Starting from 3 it would collide with [8, 12) and must jump over.
        assert_eq!(s.min_feasible_pos_at_least(id(1), 3), Some(12));
    }

    #[test]
    fn min_feasible_pos_respects_alignment() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 4, 10))
            .buffer(Buffer::new(0, 4, 8).with_align(32))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        // Next aligned address after [0, 10) is 32.
        assert_eq!(s.min_feasible_pos(id(1)), Some(32));
    }

    #[test]
    fn check_all_placeable_detects_stuck_buffer() {
        // Capacity 10; fix 4-sized blocks at 0 and 6, leaving a 2-gap that
        // cannot host the remaining size-3 buffer.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 2))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 6).unwrap();
        // The size-2 buffer fits exactly in the gap.
        assert!(s.check_all_placeable().is_ok());
        assert_eq!(s.min_feasible_pos(id(2)), Some(4));

        // Shifting the first block to address 1 wastes one unit and makes
        // a perfect 4+4+2 packing impossible; propagation alone proves
        // this immediately, without placing anything else.
        s.pop_to_level(0);
        let err = s.assign(id(0), 1).unwrap_err();
        assert!(
            err.culprits.contains(&id(0)),
            "culprits: {:?}",
            err.culprits
        );
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn propagation_fixpoint_makes_lower_bound_feasible() {
        // At the propagation fixpoint, every unfixed buffer's domain lower
        // bound is an address actually free of fixed neighbors, so the
        // solver-guided placement query coincides with the domain bound.
        let p = Problem::builder(96)
            .buffer(Buffer::new(0, 4, 20))
            .buffer(Buffer::new(0, 4, 25))
            .buffer(Buffer::new(0, 4, 8).with_align(32))
            .buffer(Buffer::new(2, 6, 5))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 3).unwrap();
        s.assign(id(1), 33).unwrap();
        for unfixed in [id(2), id(3)] {
            let lo = s.domain(unfixed).lo();
            assert_eq!(s.min_feasible_pos(unfixed), Some(lo), "buffer {unfixed}");
        }
        assert!(s.check_all_placeable().is_ok());
    }

    #[test]
    fn solution_only_when_complete() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        assert!(s.solution().is_none());
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 8).unwrap();
        assert!(s.solution().is_none());
        s.assign(id(2), 0).unwrap();
        let solution = s.solution().unwrap();
        assert!(solution.validate(&examples::tiny()).is_ok());
    }

    #[test]
    fn out_of_domain_assignment_rejected() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 1, 6))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        // Highest feasible start is 4.
        assert!(s.assign(id(0), 5).is_err());
        assert_eq!(s.level(), 0);
        s.assign(id(0), 4).unwrap();
    }

    #[test]
    fn misaligned_assignment_rejected() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 1, 8).with_align(32))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        assert!(s.assign(id(0), 16).is_err());
        s.assign(id(0), 32).unwrap();
    }

    #[test]
    fn figure1_manual_solution_accepted_step_by_step() {
        let p = examples::figure1();
        let addrs = [0u64, 2, 1, 0, 2, 3, 0, 2, 2, 0];
        let mut s = CpSolver::new(&p).unwrap();
        for (i, &a) in addrs.iter().enumerate() {
            s.assign(id(i), a)
                .unwrap_or_else(|e| panic!("step {i}: {e:?}"));
        }
        let solution = s.solution().unwrap();
        assert!(solution.validate(&p).is_ok());
    }

    #[test]
    fn invariant_report_matches_build_mode() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        s.assign(id(0), 0).unwrap();
        let report = s.invariant_report();
        assert_eq!(report.violations, 0);
        if cfg!(feature = "debug-invariants") {
            assert!(report.checks > 0, "audit hooks ran");
        } else {
            assert_eq!(report.checks, 0);
        }
    }

    #[test]
    fn conflict_culprits_in_assignment_order() {
        let p = Problem::builder(14)
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 2))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        // Assign in non-id order to check culprits follow assignment order.
        s.assign(id(2), 0).unwrap();
        s.assign(id(0), 4).unwrap();
        s.assign(id(1), 8).unwrap();
        // Only [12, 14) is left for buffer 3; address 0 conflicts.
        let err = s.assign(id(3), 0).unwrap_err();
        assert_eq!(err.culprits, vec![id(2), id(0), id(1)]);
    }
}
