use std::cell::{Cell, RefCell};

use tela_model::{Address, BufferId, Problem, Size, Solution};
use tela_trace::Tracer;

use crate::domain::Domain;
use crate::ids::{Arena, PairId, VarId};
use crate::model::{CpModel, ModelError};
use crate::sweep::{lowest_fit_explain, lowest_fit_pos, BitTimeline, BITMAP_MAX_BITS};

#[cfg(feature = "debug-invariants")]
mod invariants;

/// Counters from the `debug-invariants` runtime audit.
///
/// Without the feature both fields are always zero. With it, `checks`
/// counts individual invariant evaluations; `violations` counts the
/// ones that failed. In debug builds a violation panics immediately
/// with a structured report, so a non-zero `violations` value is only
/// observable in release builds (where the audit counts instead of
/// aborting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Individual invariant checks evaluated.
    pub checks: u64,
    /// Checks that failed.
    pub violations: u64,
}

/// Pre-decision domain bounds captured for the shrink-monotonicity
/// audit; a zero-sized placeholder when `debug-invariants` is off.
#[cfg(feature = "debug-invariants")]
type DomainsBefore = Vec<(Address, Address, bool)>;
#[cfg(not(feature = "debug-invariants"))]
type DomainsBefore = ();

#[cfg(not(feature = "debug-invariants"))]
impl CpSolver {
    #[inline(always)]
    fn audit_snapshot(&self) -> DomainsBefore {}
    #[inline(always)]
    fn audit_decision_fixpoint(&self, _before: &DomainsBefore) {}
    #[inline(always)]
    fn audit_conflict(&self, _conflict: &Conflict) {}
    #[inline(always)]
    fn audit_backtrack(&self, _target: usize) {}

    /// Invariant audit counters: always zero unless the crate is built
    /// with the `debug-invariants` feature.
    pub fn invariant_report(&self) -> InvariantReport {
        InvariantReport::default()
    }
}

/// Decision state of one ordering pair `(x, y)` (with `x < y`):
/// which buffer sits below the other in memory.
///
/// This is the CP encoding's `B(X, Y) ⊕ B(Y, X)` pair of booleans
/// (paper §5.1) collapsed into one three-valued state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderState {
    /// Neither ordering has been committed yet.
    Undecided,
    /// `pos(x) + size(x) <= pos(y)`: the lower-indexed buffer is below.
    FirstBelow,
    /// `pos(y) + size(y) <= pos(x)`: the higher-indexed buffer is below.
    SecondBelow,
}

/// A failed assignment, with the already-placed buffers implicated.
///
/// `culprits` lists fixed placements that contributed to the failure, in
/// the order they were assigned (earliest first). TelaMalloc's smart
/// backtracking jumps to the second-to-last culprit's decision level
/// (paper §5.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The buffer whose domain wiped out or that became unplaceable, when
    /// identifiable.
    pub subject: Option<BufferId>,
    /// Fixed placements implicated in the failure, in assignment order.
    pub culprits: Vec<BufferId>,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.subject {
            Some(s) => write!(f, "conflict on {s}")?,
            None => write!(f, "conflict")?,
        }
        if !self.culprits.is_empty() {
            write!(f, " implicating ")?;
            for (i, c) in self.culprits.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Conflict {}

/// A conflict whose culprit explanation has not been materialized yet:
/// the failing constraint's variables plus the failed subject, enough
/// for [`CpSolver::explain`] to rebuild the full [`Conflict`] on demand.
///
/// The TelaMalloc engine tries many candidates per decision point but
/// only ever explains the *last* failure before a major backtrack
/// (§5.4), so [`CpSolver::assign_deferred`] hands back this `Copy` seed
/// and skips the culprit gather on the ~99% of minor backtracks whose
/// explanation is never read.
///
/// A seed stays explainable until the solver's fixed set changes below
/// the failure level: the failed assignment itself is rolled back before
/// the seed is returned, but its assignment rank survives as a
/// stale-but-valid entry, and `subject_fixed` records whether the
/// subject must be treated as fixed when re-gathering culprits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictSeed {
    /// The buffer whose assignment failed.
    subject: u32,
    /// Whether the subject was fixed when the failure fired (true for
    /// propagation failures, false for out-of-domain rejections).
    subject_fixed: bool,
    /// The variables at the failing constraint.
    vars: [u32; 2],
    /// How many entries of `vars` are meaningful (1 or 2).
    vars_len: u8,
}

impl ConflictSeed {
    /// The buffer whose assignment failed.
    pub fn subject(&self) -> BufferId {
        BufferId::new(self.subject as usize)
    }
}

/// Trail entry tag: restore non-empty bounds.
const TAG_BOUNDS: u32 = 0;
/// Trail entry tag: restore bounds that were empty.
const TAG_BOUNDS_EMPTY: u32 = 1;
/// Trail entry tag: undo an ordering decision (`key >> 2` is the pair).
const TAG_ORDER: u32 = 2;
/// Ids stored in trail keys get the low two bits for the tag.
const MAX_TRAIL_ID: u32 = u32::MAX >> 2;

/// Queued-change bit: the variable's lower bound tightened.
const DIRTY_LO: u8 = 1;
/// Queued-change bit: the variable's upper bound tightened.
const DIRTY_HI: u8 = 2;

/// Per-adjacency-slot order state: pair undecided.
const SLOT_UNDECIDED: u8 = 0;
/// The slot's row owner is the *below* endpoint. Equal to [`DIRTY_LO`]
/// on purpose: a decided slot is relevant exactly when `state & bits`
/// is non-zero (the below side reacts to lower-bound changes, the
/// above side to upper-bound changes).
const SLOT_SELF_BELOW: u8 = DIRTY_LO;
/// The slot's row owner is the *above* endpoint (see
/// [`SLOT_SELF_BELOW`]).
const SLOT_SELF_ABOVE: u8 = DIRTY_HI;
/// Queued-change bit: the variable was just fixed. Matches no decided
/// slot's state, but keeps the mask non-zero so the variable is drained
/// and its *undecided* pairs re-examined even when the fix landed on an
/// existing bound and moved nothing (the pair may still become forced —
/// e.g. a domain pinned to a singleton by construction).
const DIRTY_FIX: u8 = 4;

/// One undo record in the flat trail: 20 bytes, no enum padding. The
/// low two bits of `key` hold the tag, the rest the variable (bounds
/// entries) or pair (order entries) index.
#[derive(Debug, Clone, Copy)]
struct TrailEntry {
    key: u32,
    lo: Address,
    hi: Address,
}

impl TrailEntry {
    #[inline(always)]
    fn bounds(var: u32, lo: Address, hi: Address, empty: bool) -> Self {
        let tag = if empty { TAG_BOUNDS_EMPTY } else { TAG_BOUNDS };
        TrailEntry {
            key: var << 2 | tag,
            lo,
            hi,
        }
    }

    #[inline(always)]
    fn order(pair: PairId) -> Self {
        TrailEntry {
            key: pair.raw() << 2 | TAG_ORDER,
            lo: 0,
            hi: 0,
        }
    }
}

/// The one or two variables at a failing constraint, passed up the
/// propagation call chain without the `Vec` the conflict path used to
/// allocate per minor backtrack. The first entry doubles as the
/// conflict subject.
#[derive(Debug, Clone, Copy)]
struct FailVars {
    vars: [u32; 2],
}

impl FailVars {
    #[inline(always)]
    fn two(a: u32, b: u32) -> Self {
        FailVars { vars: [a, b] }
    }

    #[inline(always)]
    fn slice(&self) -> &[u32] {
        &self.vars
    }
}

#[derive(Debug, Clone, Copy)]
struct LevelMark {
    trail_len: usize,
    fixed_len: usize,
}

/// Reusable min-feasible-position scratch: the bitset occupancy timeline
/// for on-chip-sized capacities plus a gather buffer for the sorted
/// interval fallback. Lives behind a `RefCell` because the sweep queries
/// take `&self`; each search worker owns its solver, so the loss of
/// `Sync` is harmless (same pattern as the query counters).
#[derive(Debug, Default)]
struct SweepScratch {
    timeline: BitTimeline,
    intervals: Vec<(Address, Address, u32)>,
}

/// Incremental constraint solver over the allocation CP model.
///
/// The solver maintains interval domains for every `pos` variable and the
/// ordering state of every time-overlapping pair, with a trail that makes
/// backtracking to any earlier decision level cheap. One *decision level*
/// is pushed per successful [`assign`](CpSolver::assign) call.
///
/// All search state lives in flat arrays indexed by [`VarId`]/[`PairId`]
/// — domains, ordering states, the trail, the propagation queue, and the
/// sweep scratch are preallocated `Vec`s with no per-node boxing, so
/// steady-state search (after the first pass has grown every buffer to
/// its high-water mark) performs zero heap allocations on the assign/
/// propagate/backtrack cycle and on min-feasible-position sweeps. The
/// only allocation left on a failure path is the culprit list inside the
/// returned [`Conflict`] (public API).
///
/// Propagation is bounds-consistent and therefore sound but incomplete:
/// a non-conflicting assignment may still be part of no solution. The
/// search layers (this crate's [`search`](crate::search) module and the
/// `telamalloc` crate) handle exhaustive exploration.
///
/// # Example
///
/// ```
/// use tela_cp::CpSolver;
/// use tela_model::{examples, BufferId};
///
/// let mut solver = CpSolver::new(&examples::tiny())?;
/// let a = BufferId::new(0);
/// let b = BufferId::new(1);
/// solver.assign(a, 0).unwrap();
/// // Buffer 1 overlaps buffer 0 in time, so its lowest feasible
/// // position is now on top of buffer 0.
/// assert_eq!(solver.min_feasible_pos(b), Some(8));
/// solver.pop_level();
/// assert_eq!(solver.min_feasible_pos(b), Some(0));
/// # Ok::<(), tela_cp::ModelError>(())
/// ```
#[derive(Debug)]
pub struct CpSolver {
    model: CpModel,
    domains: Vec<Domain>,
    /// Flat per-buffer size cache: the propagation loop reads sizes
    /// constantly and should not drag whole 32-byte `Buffer` structs
    /// through the cache for them.
    sizes: Vec<Size>,
    /// Flat per-buffer alignment cache (sweep queries).
    aligns: Vec<Size>,
    orders: Vec<OrderState>,
    fixed: Vec<bool>,
    fixed_order: Vec<u32>,
    /// `rank[var]` = position in `fixed_order`, maintained on fix and
    /// valid while `fixed[var]`; stale entries are never read because
    /// every consumer filters on the fixed flag first. Replaces the
    /// `vec![usize::MAX; n]` the conflict path used to allocate per
    /// minor backtrack.
    rank: Vec<u32>,
    trail: Vec<TrailEntry>,
    levels: Vec<LevelMark>,
    queue: Vec<u32>,
    /// Pending-change mask per queued variable (`DIRTY_LO` / `DIRTY_HI`);
    /// zero means not queued. The mask drives directional propagation:
    /// a decided pair only needs the implication fed by a dirty bound.
    queued: Vec<u8>,
    /// Order state per flat adjacency slot, from the slot's row-owner
    /// perspective (`SLOT_UNDECIDED` / `SLOT_SELF_BELOW` /
    /// `SLOT_SELF_ABOVE`). A redundant, sequentially-readable view of
    /// `orders` that lets the propagation inner loop classify a slot
    /// from one byte, without touching `adj_pair` or `orders`.
    /// Maintained in `decide_order` and the trail restore.
    slot_state: Vec<u8>,
    /// `trail_stamp[var]` = the level epoch that last pushed a bounds
    /// entry for `var`. Restoration is last-pop-wins within a level, so
    /// one entry per variable per level suffices; matching stamps let
    /// repeated tightenings of the same variable skip redundant pushes.
    trail_stamp: Vec<u64>,
    /// Monotone count of decision levels ever pushed — the epoch keying
    /// `trail_stamp` (never reused, so stale stamps cannot collide).
    ///
    /// SOUNDNESS: the stamp check assumes `level_epoch` is the epoch of
    /// the innermost open level whenever a tighten runs. This holds
    /// because every tighten happens inside the propagation of the most
    /// recently pushed level — levels are never popped mid-propagation,
    /// and nothing tightens bounds between a pop and the next push.
    level_epoch: u64,
    sweep: RefCell<SweepScratch>,
    /// Reusable culprit gather buffer for conflict explanations.
    culprits: RefCell<Vec<u32>>,
    /// Problem capacity, cached flat.
    capacity: Address,
    /// Whether the capacity is small enough for the bitset timeline.
    bitmap_capable: bool,
    propagations: u64,
    /// Count of min-feasible-position sweeps; a `Cell` because the query
    /// methods take `&self` (each search worker owns its solver, so the
    /// loss of `Sync` is harmless).
    min_pos_queries: Cell<u64>,
    tracer: Tracer,
    #[cfg(feature = "debug-invariants")]
    audit: invariants::AuditCounters,
}

impl CpSolver {
    /// Builds a solver for `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the problem is trivially infeasible (see
    /// [`CpModel::new`]).
    pub fn new(problem: &Problem) -> Result<Self, ModelError> {
        Ok(Self::from_model(CpModel::new(problem)?))
    }

    /// Builds a solver over an existing model.
    pub fn from_model(model: CpModel) -> Self {
        let problem = model.problem();
        let domains = problem
            .buffers()
            .iter()
            .map(|b| Domain::new(0, problem.capacity() - b.size(), b.align()))
            .collect::<Vec<_>>();
        let sizes: Vec<Size> = problem.buffers().iter().map(|b| b.size()).collect();
        let aligns: Vec<Size> = problem.buffers().iter().map(|b| b.align()).collect();
        let n = problem.len();
        let pair_count = model.pair_count();
        debug_assert!(
            n as u64 <= MAX_TRAIL_ID as u64 && pair_count as u64 <= MAX_TRAIL_ID as u64,
            "trail keys reserve two tag bits"
        );
        let capacity = problem.capacity();
        let max_degree = model.max_degree();
        let adj_len = model.adj_len();
        CpSolver {
            model,
            domains,
            sizes,
            aligns,
            orders: vec![OrderState::Undecided; pair_count],
            fixed: vec![false; n],
            fixed_order: Vec::with_capacity(n),
            rank: vec![0; n],
            trail: Vec::new(),
            levels: Vec::with_capacity(n + 1),
            queue: Vec::with_capacity(n),
            queued: vec![0; n],
            slot_state: vec![SLOT_UNDECIDED; adj_len],
            trail_stamp: vec![0; n],
            level_epoch: 0,
            sweep: RefCell::new(SweepScratch {
                timeline: BitTimeline::default(),
                // A sweep gathers at most one interval per neighbor.
                intervals: Vec::with_capacity(max_degree),
            }),
            culprits: RefCell::new(Vec::new()),
            capacity,
            bitmap_capable: capacity <= BITMAP_MAX_BITS,
            propagations: 0,
            min_pos_queries: Cell::new(0),
            tracer: Tracer::disabled(),
            #[cfg(feature = "debug-invariants")]
            audit: invariants::AuditCounters::default(),
        }
    }

    /// Attaches a tracer: conflicts are counted and their culprit-clique
    /// sizes recorded as metrics (and, with the `trace` feature, emitted
    /// as per-conflict events). A disabled tracer — the default — costs
    /// one branch per conflict and nothing on the propagation hot loop.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer attached via [`set_tracer`](CpSolver::set_tracer)
    /// (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Number of min-feasible-position sweeps performed so far (a
    /// deterministic work counter, like
    /// [`propagations`](CpSolver::propagations)).
    pub fn min_pos_queries(&self) -> u64 {
        self.min_pos_queries.get()
    }

    /// Records a conflict into the attached tracer (no-op when the
    /// tracer is disabled).
    fn note_conflict(&self, conflict: &Conflict) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer.count("cp.conflicts", 1);
        self.tracer
            .observe("cp.conflict.clique_size", conflict.culprits.len() as u64);
        #[cfg(feature = "trace")]
        self.tracer.instant(
            "cp",
            "conflict",
            vec![
                (
                    "subject".into(),
                    conflict
                        .subject
                        .map(|s| s.index())
                        .map_or(tela_trace::Value::Str("none".to_string()), Into::into),
                ),
                ("culprits".into(), conflict.culprits.len().into()),
            ],
        );
    }

    /// The constraint model this solver operates on.
    pub fn model(&self) -> &CpModel {
        &self.model
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        self.model.problem()
    }

    /// Current decision level (number of successful assignments on the
    /// current path).
    pub fn level(&self) -> usize {
        self.levels.len()
    }

    /// Number of pair-propagation operations performed so far (a
    /// deterministic work counter for experiments).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Current domain of `id`'s position variable (a copy; [`Domain`] is
    /// a small `Copy` value).
    #[inline]
    pub fn domain(&self, id: BufferId) -> Domain {
        *self.domains.at(id.index())
    }

    /// The committed address of `id`, if it has been assigned.
    pub fn assignment(&self, id: BufferId) -> Option<Address> {
        if *self.fixed.at(id.index()) {
            Some(self.domains.at(id.index()).lo())
        } else {
            None
        }
    }

    /// Returns true if `id` has been assigned.
    pub fn is_fixed(&self, id: BufferId) -> bool {
        *self.fixed.at(id.index())
    }

    /// Number of assigned buffers.
    pub fn fixed_count(&self) -> usize {
        self.fixed_order.len()
    }

    /// Assigned buffers in assignment order.
    pub fn fixed_in_order(&self) -> impl Iterator<Item = BufferId> + '_ {
        self.fixed_order.iter().map(|&v| BufferId::new(v as usize))
    }

    /// Unassigned buffers in id order.
    pub fn unfixed(&self) -> impl Iterator<Item = BufferId> + '_ {
        self.fixed
            .iter()
            .enumerate()
            .filter(|&(_, &f)| !f)
            .map(|(i, _)| BufferId::new(i))
    }

    /// Ordering state of the pair with index `pair`.
    pub fn order(&self, pair: PairId) -> OrderState {
        *self.orders.at(pair.idx())
    }

    /// Assigns `id` to `addr`, pushing one decision level and running
    /// propagation.
    ///
    /// On conflict the decision level is rolled back automatically, so
    /// the solver is back in its pre-call state and another candidate can
    /// be tried — a *minor backtrack* in the paper's terms.
    ///
    /// # Errors
    ///
    /// Returns the [`Conflict`] (with implicated placements) if the
    /// assignment is inconsistent with the constraint store.
    pub fn assign(&mut self, id: BufferId, addr: Address) -> Result<(), Conflict> {
        self.assign_deferred(id, addr)
            .map_err(|seed| self.explain(&seed))
    }

    /// Like [`assign`](CpSolver::assign), but on failure returns a
    /// compact [`ConflictSeed`] instead of materializing the culprit
    /// explanation, skipping the per-failure gather/sort entirely in
    /// release builds (the `debug-invariants` audit and an enabled
    /// tracer still see the full conflict).
    ///
    /// Pass the seed to [`explain`](CpSolver::explain) to obtain the
    /// [`Conflict`]; the result is identical to what [`assign`] would
    /// have returned as long as no later assignment succeeds and no
    /// backtrack below the failure level happens in between.
    ///
    /// # Errors
    ///
    /// Returns the seed of the conflict on an inconsistent assignment;
    /// the decision level is rolled back automatically, as in
    /// [`assign`](CpSolver::assign).
    pub fn assign_deferred(&mut self, id: BufferId, addr: Address) -> Result<(), ConflictSeed> {
        let var = VarId::from(id).raw();
        debug_assert!(
            !*self.fixed.at(id.index()),
            "buffer {id} is already assigned"
        );
        #[allow(clippy::let_unit_value)] // unit only without debug-invariants
        let before = self.audit_snapshot();
        self.levels.push(LevelMark {
            trail_len: self.trail.len(),
            fixed_len: self.fixed_order.len(),
        });
        self.level_epoch += 1;
        if !self.domains.at(id.index()).contains(addr) {
            let seed = ConflictSeed {
                subject: var,
                subject_fixed: false,
                vars: [var, var],
                vars_len: 1,
            };
            self.seeded_failure(&seed);
            self.pop_level();
            return Err(seed);
        }
        // Trail the old bounds, then fix. The level was just pushed, so
        // this is necessarily the level's first entry for `var`.
        let (lo, hi, empty) = self.domains.at(id.index()).snapshot();
        *self.trail_stamp.at_mut(id.index()) = self.level_epoch;
        self.trail.push(TrailEntry::bounds(var, lo, hi, empty));
        self.domains.at_mut(id.index()).fix(addr);
        *self.fixed.at_mut(id.index()) = true;
        *self.rank.at_mut(id.index()) = self.fixed_order.len() as u32;
        self.fixed_order.push(var);
        // Mark only the bounds the fix actually moved — an assignment at
        // an existing bound cannot tighten a decided neighbor through it
        // — plus the fix bit, so undecided pairs are always re-examined.
        let bits = u8::from(lo != addr) * DIRTY_LO + u8::from(hi != addr) * DIRTY_HI;
        self.enqueue(var, DIRTY_FIX | bits);
        match self.propagate() {
            Ok(()) => {
                self.audit_decision_fixpoint(&before);
                Ok(())
            }
            Err(fail) => {
                let seed = ConflictSeed {
                    subject: var,
                    subject_fixed: true,
                    vars: fail.vars,
                    vars_len: 2,
                };
                self.seeded_failure(&seed);
                self.pop_level();
                Err(seed)
            }
        }
    }

    /// Materializes the full [`Conflict`] for a deferred failure.
    ///
    /// Valid while the fixed set below the failure level is unchanged
    /// (the engine guarantees this: between a minor backtrack and the
    /// major backtrack that reads its conflict, every intervening
    /// candidate also failed and rolled itself back).
    pub fn explain(&self, seed: &ConflictSeed) -> Conflict {
        // The subject's own fix was rolled back with the failed level,
        // but its culprit role and rank survive; the ghost re-adds it to
        // the gather exactly as the failure-time build saw it.
        let ghost = seed.subject_fixed.then_some(seed.subject);
        self.build_conflict_with_ghost(
            Some(seed.subject),
            &seed.vars[..seed.vars_len as usize],
            ghost,
        )
    }

    /// Audit/trace hook for a deferred failure: consumers that need the
    /// full conflict — the `debug-invariants` audit, an enabled metrics
    /// tracer — materialize it here, before the level pop. The
    /// steady-state release path skips the gather entirely.
    fn seeded_failure(&self, seed: &ConflictSeed) {
        if cfg!(feature = "debug-invariants") || self.tracer.enabled() {
            // Pre-pop, the subject is genuinely fixed (or genuinely not,
            // for out-of-domain rejections), so the ghost is redundant
            // here and `explain` yields the failure-time conflict.
            let conflict = self.explain(seed);
            self.audit_conflict(&conflict);
            self.note_conflict(&conflict);
        }
    }

    /// Commits an ordering decision for an undecided pair, pushing one
    /// decision level and running propagation — the boolean branching a
    /// CP-SAT solver performs on the `B(X, Y)` variables (paper §5.1).
    ///
    /// On conflict the decision level is rolled back automatically.
    ///
    /// # Errors
    ///
    /// Returns the [`Conflict`] if the decision is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if the pair is already decided or `state` is
    /// [`OrderState::Undecided`].
    pub fn decide(&mut self, pair: PairId, state: OrderState) -> Result<(), Conflict> {
        assert_eq!(
            *self.orders.at(pair.idx()),
            OrderState::Undecided,
            "pair {pair} is already decided"
        );
        let (x, y) = self.model.pair(pair);
        let (below, above) = match state {
            OrderState::FirstBelow => (x, y),
            OrderState::SecondBelow => (y, x),
            // tela-lint: allow(no-solve-path-panic, reason = "documented caller contract: deciding a pair to Undecided is API misuse, not a solve failure")
            OrderState::Undecided => panic!("cannot decide a pair to Undecided"),
        };
        #[allow(clippy::let_unit_value)] // unit only without debug-invariants
        let before = self.audit_snapshot();
        self.levels.push(LevelMark {
            trail_len: self.trail.len(),
            fixed_len: self.fixed_order.len(),
        });
        self.level_epoch += 1;
        let result = self
            .decide_order(pair, state, below, above)
            .and_then(|()| self.propagate());
        match result {
            Ok(()) => {
                self.audit_decision_fixpoint(&before);
                Ok(())
            }
            Err(fail) => {
                self.clear_queue();
                let conflict = self.build_conflict(Some(fail.vars[0]), fail.slice());
                self.audit_conflict(&conflict);
                self.note_conflict(&conflict);
                self.pop_level();
                Err(conflict)
            }
        }
    }

    /// The first undecided pair with index `>= from`, if any.
    pub fn next_undecided_pair(&self, from: PairId) -> Option<PairId> {
        (from.idx()..self.orders.len())
            .find(|&i| *self.orders.at(i) == OrderState::Undecided)
            .map(|i| PairId::new(i as u32))
    }

    /// When every pair is decided, the domain lower bounds form a valid
    /// solution: each decided ordering guarantees
    /// `lo(above) >= lo(below) + size(below)` at the propagation fixpoint,
    /// and bounds already respect capacity and alignment.
    ///
    /// Returns `None` while any pair remains undecided.
    pub fn lower_bound_solution(&self) -> Option<Solution> {
        if self.orders.contains(&OrderState::Undecided) {
            return None;
        }
        Some(Solution::new(self.domains.iter().map(|d| d.lo()).collect()))
    }

    /// Pops the most recent decision level. No-op at level 0.
    pub fn pop_level(&mut self) {
        let target = self.level().saturating_sub(1);
        self.pop_to_level(target);
    }

    /// Backtracks to `level`, undoing all later assignments and their
    /// propagation effects.
    ///
    /// # Panics
    ///
    /// Panics if `level` is greater than the current level.
    // tela-lint: hot-path
    pub fn pop_to_level(&mut self, level: usize) {
        assert!(level <= self.level(), "cannot pop forward to level {level}");
        // INVARIANT: the `let … else` breaks below are unreachable — the
        // loop conditions (`len() > level` / `len() > mark.trail_len`)
        // imply a poppable element. Spelled without `expect` so even an
        // impossible corruption degrades to a truncated pop instead of
        // aborting the solve.
        while self.levels.len() > level {
            let Some(mark) = self.levels.pop() else { break };
            while self.trail.len() > mark.trail_len {
                let Some(entry) = self.trail.pop() else { break };
                let id = (entry.key >> 2) as usize;
                match entry.key & 3 {
                    TAG_ORDER => {
                        *self.orders.at_mut(id) = OrderState::Undecided;
                        let [sx, sy] = self.model.pair_slots(PairId::new(id as u32));
                        *self.slot_state.at_mut(sx as usize) = SLOT_UNDECIDED;
                        *self.slot_state.at_mut(sy as usize) = SLOT_UNDECIDED;
                    }
                    tag => {
                        self.domains
                            .at_mut(id)
                            .restore(entry.lo, entry.hi, tag == TAG_BOUNDS_EMPTY)
                    }
                }
            }
            while self.fixed_order.len() > mark.fixed_len {
                let Some(var) = self.fixed_order.pop() else {
                    break;
                };
                *self.fixed.at_mut(var as usize) = false;
            }
        }
        // Any queued propagation work belongs to the abandoned subtree.
        self.clear_queue();
        self.audit_backtrack(level);
    }

    /// The lowest feasible aligned address for `id` given the *fixed*
    /// placements and `id`'s current domain — the paper's solver-guided
    /// placement query (§5.2).
    ///
    /// Returns `None` if no address fits. Note this ignores unfixed
    /// buffers, so `Some` does not guarantee global feasibility.
    pub fn min_feasible_pos(&self, id: BufferId) -> Option<Address> {
        self.min_feasible_pos_at_least(id, 0)
    }

    /// Like [`min_feasible_pos`](CpSolver::min_feasible_pos), but only
    /// considers addresses `>= from`. Used to enumerate successive
    /// placement candidates.
    // tela-lint: hot-path
    pub fn min_feasible_pos_at_least(&self, id: BufferId, from: Address) -> Option<Address> {
        self.min_pos_queries.set(self.min_pos_queries.get() + 1);
        let var = VarId::from(id);
        let d = *self.domains.at(var.idx());
        if d.is_empty() {
            return None;
        }
        self.sweep_lowest(
            var.raw(),
            *self.sizes.at(var.idx()),
            *self.aligns.at(var.idx()),
            d.lo().max(from),
            d.hi(),
        )
    }

    /// Lowest-fit sweep over the fixed time-overlapping neighbors of
    /// `var`: marks their address intervals on the reusable bitset
    /// occupancy timeline (or gathers them into the sorted-interval
    /// scratch for capacities too large to bitmap) and scans for the
    /// lowest aligned free window. No allocation in steady state; the
    /// timeline/gather buffers grow once and are reused.
    // tela-lint: hot-path
    fn sweep_lowest(
        &self,
        var: u32,
        size: Size,
        align: Size,
        lo: Address,
        hi: Address,
    ) -> Option<Address> {
        let scratch = &mut *self.sweep.borrow_mut();
        let row = self.model.row(var);
        if self.bitmap_capable {
            scratch.timeline.ensure_bits(self.capacity);
            for at in row.start..row.end {
                let other = self.model.row_other(at) as usize;
                if *self.fixed.at(other) {
                    let start = self.domains.at(other).lo();
                    scratch.timeline.mark(start, start + *self.sizes.at(other));
                }
            }
            let pos = scratch.timeline.lowest_fit(size, align, lo, hi);
            for at in row {
                let other = self.model.row_other(at) as usize;
                if *self.fixed.at(other) {
                    let start = self.domains.at(other).lo();
                    scratch.timeline.clear(start, start + *self.sizes.at(other));
                }
            }
            pos
        } else {
            scratch.intervals.clear();
            for at in row {
                let other = self.model.row_other(at) as usize;
                if *self.fixed.at(other) {
                    let start = self.domains.at(other).lo();
                    scratch
                        .intervals
                        .push((start, start + *self.sizes.at(other), other as u32));
                }
            }
            scratch.intervals.sort_unstable();
            lowest_fit_pos(size, align, lo, hi, &scratch.intervals)
        }
    }

    /// Checks that every unfixed buffer still has at least one feasible
    /// address with respect to the fixed placements.
    ///
    /// This is the "run the solver at every step" early-infeasibility
    /// check (§4): it catches dead ends that bounds propagation alone
    /// misses because interval domains cannot represent holes.
    ///
    /// # Errors
    ///
    /// Returns a [`Conflict`] naming the unplaceable buffer and the
    /// placements blocking it.
    pub fn check_all_placeable(&self) -> Result<(), Conflict> {
        for id in self.unfixed() {
            let var = VarId::from(id);
            let d = *self.domains.at(var.idx());
            if d.is_empty() {
                let conflict = self.build_conflict(Some(var.raw()), &[var.raw()]);
                self.note_conflict(&conflict);
                return Err(conflict);
            }
            let size = *self.sizes.at(var.idx());
            let align = *self.aligns.at(var.idx());
            if self
                .sweep_lowest(var.raw(), size, align, d.lo(), d.hi())
                .is_some()
            {
                continue;
            }
            // Cold explanation path: rebuild the sorted interval list and
            // re-run the attributing sweep to name the blockers.
            let mut occupied: Vec<(Address, Address, u32)> = Vec::new();
            for at in self.model.row(var.raw()) {
                let other = self.model.row_other(at) as usize;
                if *self.fixed.at(other) {
                    let start = self.domains.at(other).lo();
                    occupied.push((start, start + *self.sizes.at(other), other as u32));
                }
            }
            occupied.sort_unstable();
            let result = lowest_fit_explain(size, align, d.lo(), d.hi(), &occupied);
            debug_assert!(result.pos.is_none(), "sweep twins disagree");
            let mut culprits: Vec<BufferId> = result
                .blockers
                .iter()
                .map(|&v| BufferId::new(v as usize))
                .collect();
            culprits.sort_unstable_by_key(|c| *self.rank.at(c.index()));
            let conflict = Conflict {
                subject: Some(id),
                culprits,
            };
            self.audit_conflict(&conflict);
            self.note_conflict(&conflict);
            return Err(conflict);
        }
        Ok(())
    }

    /// Extracts the complete solution once every buffer is fixed.
    pub fn solution(&self) -> Option<Solution> {
        if self.fixed_count() != self.problem().len() {
            return None;
        }
        Some(Solution::new(self.domains.iter().map(|d| d.lo()).collect()))
    }

    // tela-lint: hot-path
    #[inline]
    fn enqueue(&mut self, var: u32, bits: u8) {
        let mask = self.queued.at_mut(var as usize);
        if *mask == 0 {
            self.queue.push(var);
        }
        *mask |= bits;
    }

    /// Drops all queued propagation work (conflict/backtrack cleanup).
    // tela-lint: hot-path
    fn clear_queue(&mut self) {
        while let Some(var) = self.queue.pop() {
            *self.queued.at_mut(var as usize) = 0;
        }
    }

    /// Fixpoint propagation. On conflict, returns the variables at the
    /// failing constraint.
    ///
    /// Directional: each queued variable carries the mask of bounds that
    /// changed since it was last processed, and decided pairs only
    /// re-run the implication fed by a dirty bound. Bounds propagation
    /// is monotone, so the fixpoint (and each assignment's Ok/Err
    /// outcome) is identical to exhaustive re-application; only the
    /// order in which a wipeout is discovered — and hence which pair a
    /// conflict names — can differ.
    // tela-lint: hot-path
    fn propagate(&mut self) -> Result<(), FailVars> {
        while let Some(var) = self.queue.pop() {
            let bits = std::mem::replace(self.queued.at_mut(var as usize), 0);
            // Index-based iteration over the flat CSR row: the adjacency
            // lives in the immutable `CpModel`, so positional re-reads
            // per pair keep the inner loop free of allocation and of
            // aliasing conflicts with `&mut self`.
            let row = self.model.row(var);
            for at in row {
                // One sequential byte read classifies the slot; decided
                // slots whose direction is unaffected by `bits` are
                // skipped without touching the pair or order arrays.
                let state = *self.slot_state.at(at);
                let result = if state != SLOT_UNDECIDED {
                    if state & bits == 0 {
                        continue;
                    }
                    self.propagations += 1;
                    let other = self.model.row_other(at);
                    if state == SLOT_SELF_BELOW {
                        self.prop_from_below(var, other)
                    } else {
                        self.prop_from_above(other, var)
                    }
                } else {
                    let pair = self.model.row_pair(at);
                    let other = self.model.row_other(at);
                    self.propagate_undecided(pair, var, other)
                };
                if let Err(fail) = result {
                    self.clear_queue();
                    return Err(fail);
                }
            }
        }
        Ok(())
    }

    // tela-lint: hot-path
    #[inline]
    fn propagate_undecided(&mut self, pair: PairId, var: u32, other: u32) -> Result<(), FailVars> {
        // Pair endpoints are normalized `x < y`, so they are recoverable
        // from the CSR slot's `(var, other)` without a random read of
        // the pairs array.
        let (x, y) = if var < other {
            (var, other)
        } else {
            (other, var)
        };
        self.propagations += 1;
        let x_possible = self.order_possible(x, y);
        let y_possible = self.order_possible(y, x);
        match (x_possible, y_possible) {
            (false, false) => Err(FailVars::two(x, y)),
            (true, false) => self.decide_order(pair, OrderState::FirstBelow, x, y),
            (false, true) => self.decide_order(pair, OrderState::SecondBelow, y, x),
            (true, true) => Ok(()),
        }
    }

    /// Could `below` be placed entirely under `above`?
    // tela-lint: hot-path
    #[inline]
    fn order_possible(&self, below: u32, above: u32) -> bool {
        let db = self.domains.at(below as usize);
        let da = self.domains.at(above as usize);
        if db.is_empty() || da.is_empty() {
            return false;
        }
        db.lo() + *self.sizes.at(below as usize) <= da.hi()
    }

    // tela-lint: hot-path
    fn decide_order(
        &mut self,
        pair: PairId,
        state: OrderState,
        below: u32,
        above: u32,
    ) -> Result<(), FailVars> {
        *self.orders.at_mut(pair.idx()) = state;
        let [sx, sy] = self.model.pair_slots(pair);
        // `sx` is the slot in the lower-indexed endpoint's row;
        // FirstBelow means that endpoint is the below side.
        let (below_slot, above_slot) = match state {
            OrderState::FirstBelow => (sx, sy),
            _ => (sy, sx),
        };
        *self.slot_state.at_mut(below_slot as usize) = SLOT_SELF_BELOW;
        *self.slot_state.at_mut(above_slot as usize) = SLOT_SELF_ABOVE;
        self.trail.push(TrailEntry::order(pair));
        self.apply_order(below, above)
    }

    /// Enforces `pos(below) + size(below) <= pos(above)` on the bounds.
    /// Used at decision time, when both implications must be applied.
    // tela-lint: hot-path
    #[inline]
    fn apply_order(&mut self, below: u32, above: u32) -> Result<(), FailVars> {
        self.propagations += 2;
        let size_below = *self.sizes.at(below as usize);
        // lo(above) >= lo(below) + size(below)
        let lo_bound = self.domains.at(below as usize).lo() + size_below;
        self.tighten_lo(above, lo_bound)
            .map_err(|v| FailVars::two(v, below))?;
        // hi(below) <= hi(above) - size(below)
        let hi_above = self.domains.at(above as usize).hi();
        match hi_above.checked_sub(size_below) {
            Some(bound) => self
                .tighten_hi(below, bound)
                .map_err(|v| FailVars::two(v, above)),
            None => Err(FailVars::two(below, above)),
        }
    }

    /// One direction of a decided pair: `below`'s raised lower bound
    /// pushes `above` up. The pair was fully applied when decided, so
    /// only the implication fed by a dirty bound can still tighten —
    /// `lo(below)` feeds `lo(above)`, and `hi(above)` feeds `hi(below)`;
    /// the other endpoint's changes re-queue the pair from its side.
    // tela-lint: hot-path
    #[inline]
    fn prop_from_below(&mut self, below: u32, above: u32) -> Result<(), FailVars> {
        let lo_bound = self.domains.at(below as usize).lo() + *self.sizes.at(below as usize);
        self.tighten_lo(above, lo_bound)
            .map_err(|v| FailVars::two(v, below))
    }

    /// One direction of a decided pair: `above`'s lowered upper bound
    /// pushes `below` down (see
    /// [`prop_from_below`](CpSolver::prop_from_below)).
    // tela-lint: hot-path
    #[inline]
    fn prop_from_above(&mut self, below: u32, above: u32) -> Result<(), FailVars> {
        let size_below = *self.sizes.at(below as usize);
        // `hi(above)` only ever decreases, so a fresh underflow here
        // requires a dirty `hi(above)` — never skipped.
        match self.domains.at(above as usize).hi().checked_sub(size_below) {
            Some(bound) => self
                .tighten_hi(below, bound)
                .map_err(|v| FailVars::two(v, above)),
            None => Err(FailVars::two(below, above)),
        }
    }

    /// Raises `var`'s lower bound with trailing; returns the wiped
    /// variable on failure.
    ///
    /// Trailing is deduplicated per decision level: restoration pops in
    /// LIFO order, so within a level only the first-pushed (last-popped)
    /// entry for a variable determines its restored bounds — repeats
    /// with a matching `trail_stamp` are skipped.
    // tela-lint: hot-path
    #[inline]
    fn tighten_lo(&mut self, var: u32, bound: Address) -> Result<(), u32> {
        let snapshot = self.domains.at(var as usize).snapshot();
        if self.domains.at_mut(var as usize).tighten_lo(bound) {
            if *self.trail_stamp.at(var as usize) != self.level_epoch {
                *self.trail_stamp.at_mut(var as usize) = self.level_epoch;
                self.trail
                    .push(TrailEntry::bounds(var, snapshot.0, snapshot.1, snapshot.2));
            }
            if self.domains.at(var as usize).is_empty() {
                return Err(var);
            }
            self.enqueue(var, DIRTY_LO);
        }
        Ok(())
    }

    /// Lowers `var`'s upper bound with trailing; returns the wiped
    /// variable on failure. Trailing is deduplicated per level as in
    /// [`tighten_lo`](CpSolver::tighten_lo).
    // tela-lint: hot-path
    #[inline]
    fn tighten_hi(&mut self, var: u32, bound: Address) -> Result<(), u32> {
        let snapshot = self.domains.at(var as usize).snapshot();
        if self.domains.at_mut(var as usize).tighten_hi(bound) {
            if *self.trail_stamp.at(var as usize) != self.level_epoch {
                *self.trail_stamp.at_mut(var as usize) = self.level_epoch;
                self.trail
                    .push(TrailEntry::bounds(var, snapshot.0, snapshot.1, snapshot.2));
            }
            if self.domains.at(var as usize).is_empty() {
                return Err(var);
            }
            self.enqueue(var, DIRTY_HI);
        }
        Ok(())
    }

    /// Builds a conflict whose culprits are the fixed buffers that overlap
    /// the conflicting variables in time, in assignment order. Gathering,
    /// sorting, and deduplication run in a reusable scratch buffer; the
    /// only allocation is the culprit list in the returned [`Conflict`]
    /// (public API).
    fn build_conflict(&self, subject: Option<u32>, vars: &[u32]) -> Conflict {
        self.build_conflict_with_ghost(subject, vars, None)
    }

    /// [`build_conflict`](CpSolver::build_conflict) with one extra
    /// buffer treated as fixed: the rolled-back subject of a deferred
    /// failure, whose rank entry is stale but still failure-accurate.
    fn build_conflict_with_ghost(
        &self,
        subject: Option<u32>,
        vars: &[u32],
        ghost: Option<u32>,
    ) -> Conflict {
        let is_fixed = |v: u32| *self.fixed.at(v as usize) || Some(v) == ghost;
        let mut scratch = self.culprits.borrow_mut();
        scratch.clear();
        for &v in vars {
            if is_fixed(v) {
                scratch.push(v);
            }
            for at in self.model.row(v) {
                let other = self.model.row_other(at);
                if is_fixed(other) {
                    scratch.push(other);
                }
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        // Assignment order; ranks of fixed buffers are unique, so the
        // unstable sort is deterministic.
        scratch.sort_unstable_by_key(|&v| *self.rank.at(v as usize));
        Conflict {
            subject: subject.map(|v| BufferId::new(v as usize)),
            culprits: scratch.iter().map(|&v| BufferId::new(v as usize)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer, Problem};

    fn id(i: usize) -> BufferId {
        BufferId::new(i)
    }

    #[test]
    fn assign_and_read_back() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        s.assign(id(0), 0).unwrap();
        assert_eq!(s.assignment(id(0)), Some(0));
        assert_eq!(s.level(), 1);
        assert!(s.is_fixed(id(0)));
        assert!(!s.is_fixed(id(1)));
    }

    #[test]
    fn overlapping_fixed_placement_conflicts() {
        // Two fully-overlapping buffers cannot share address 0.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 8))
            .buffer(Buffer::new(0, 4, 8))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        let err = s.assign(id(1), 4).unwrap_err();
        assert!(err.culprits.contains(&id(0)));
        // The failed level was rolled back.
        assert_eq!(s.level(), 1);
        assert!(!s.is_fixed(id(1)));
        // A consistent address still works.
        s.assign(id(1), 8).unwrap();
        assert_eq!(s.level(), 2);
    }

    #[test]
    fn propagation_tightens_via_decided_orders() {
        // Capacity 10, two overlapping buffers of sizes 6 and 4: placing
        // the size-6 buffer at 0 forces the other to [6, 6].
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        let d = s.domain(id(1));
        assert_eq!((d.lo(), d.hi()), (6, 6));
    }

    #[test]
    fn propagation_chain_across_three_buffers() {
        // Sizes 4,4,4 in capacity 12, all overlapping: fixing the first at
        // 0 and the second at 4 forces the third to 8.
        let p = Problem::builder(12)
            .buffers((0..3).map(|_| Buffer::new(0, 2, 4)))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 4).unwrap();
        let d = s.domain(id(2));
        assert_eq!((d.lo(), d.hi()), (8, 8));
        s.assign(id(2), 8).unwrap();
        let solution = s.solution().unwrap();
        assert!(solution.validate(&p).is_ok());
        // Regression guard for the propagation hot loop: this sequence
        // performs exactly 12 pair propagations. A change to the
        // fixpoint loop (work scheduling, duplicate enqueueing, missed
        // dedup) shows up here as a different deterministic count.
        assert_eq!(s.propagations(), 12);
    }

    #[test]
    fn pop_level_restores_domains_and_orders() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        let before = (s.domain(id(1)).lo(), s.domain(id(1)).hi());
        s.assign(id(0), 0).unwrap();
        assert_ne!((s.domain(id(1)).lo(), s.domain(id(1)).hi()), before);
        s.pop_level();
        assert_eq!((s.domain(id(1)).lo(), s.domain(id(1)).hi()), before);
        assert_eq!(s.level(), 0);
        assert_eq!(s.fixed_count(), 0);
        assert_eq!(s.order(PairId::new(0)), OrderState::Undecided);
    }

    #[test]
    fn pop_to_level_jumps_multiple_levels() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 8).unwrap();
        s.assign(id(2), 0).unwrap();
        assert_eq!(s.level(), 3);
        s.pop_to_level(1);
        assert_eq!(s.level(), 1);
        assert!(s.is_fixed(id(0)));
        assert!(!s.is_fixed(id(1)));
        assert!(!s.is_fixed(id(2)));
    }

    #[test]
    fn min_feasible_pos_sees_holes() {
        // A fixed buffer in the middle: bounds propagation cannot exclude
        // the occupied band, but the sweep finds the hole below it.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 4)) // will sit at [8, 12)
            .buffer(Buffer::new(0, 4, 6))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 8).unwrap();
        // Size-6 buffer fits below the hole at [0, 6)? 6 <= 8, yes.
        assert_eq!(s.min_feasible_pos(id(1)), Some(0));
        // Starting from 3 it would collide with [8, 12) and must jump over.
        assert_eq!(s.min_feasible_pos_at_least(id(1), 3), Some(12));
    }

    #[test]
    fn min_feasible_pos_respects_alignment() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 4, 10))
            .buffer(Buffer::new(0, 4, 8).with_align(32))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        // Next aligned address after [0, 10) is 32.
        assert_eq!(s.min_feasible_pos(id(1)), Some(32));
    }

    #[test]
    fn check_all_placeable_detects_stuck_buffer() {
        // Capacity 10; fix 4-sized blocks at 0 and 6, leaving a 2-gap that
        // cannot host the remaining size-3 buffer.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 4))
            .buffer(Buffer::new(0, 4, 2))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 6).unwrap();
        // The size-2 buffer fits exactly in the gap.
        assert!(s.check_all_placeable().is_ok());
        assert_eq!(s.min_feasible_pos(id(2)), Some(4));

        // Shifting the first block to address 1 wastes one unit and makes
        // a perfect 4+4+2 packing impossible; propagation alone proves
        // this immediately, without placing anything else.
        s.pop_to_level(0);
        let err = s.assign(id(0), 1).unwrap_err();
        assert!(
            err.culprits.contains(&id(0)),
            "culprits: {:?}",
            err.culprits
        );
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn propagation_fixpoint_makes_lower_bound_feasible() {
        // At the propagation fixpoint, every unfixed buffer's domain lower
        // bound is an address actually free of fixed neighbors, so the
        // solver-guided placement query coincides with the domain bound.
        let p = Problem::builder(96)
            .buffer(Buffer::new(0, 4, 20))
            .buffer(Buffer::new(0, 4, 25))
            .buffer(Buffer::new(0, 4, 8).with_align(32))
            .buffer(Buffer::new(2, 6, 5))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 3).unwrap();
        s.assign(id(1), 33).unwrap();
        for unfixed in [id(2), id(3)] {
            let lo = s.domain(unfixed).lo();
            assert_eq!(s.min_feasible_pos(unfixed), Some(lo), "buffer {unfixed}");
        }
        assert!(s.check_all_placeable().is_ok());
    }

    #[test]
    fn solution_only_when_complete() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        assert!(s.solution().is_none());
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 8).unwrap();
        assert!(s.solution().is_none());
        s.assign(id(2), 0).unwrap();
        let solution = s.solution().unwrap();
        assert!(solution.validate(&examples::tiny()).is_ok());
    }

    #[test]
    fn out_of_domain_assignment_rejected() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 1, 6))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        // Highest feasible start is 4.
        assert!(s.assign(id(0), 5).is_err());
        assert_eq!(s.level(), 0);
        s.assign(id(0), 4).unwrap();
    }

    #[test]
    fn misaligned_assignment_rejected() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 1, 8).with_align(32))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        assert!(s.assign(id(0), 16).is_err());
        s.assign(id(0), 32).unwrap();
    }

    #[test]
    fn figure1_manual_solution_accepted_step_by_step() {
        let p = examples::figure1();
        let addrs = [0u64, 2, 1, 0, 2, 3, 0, 2, 2, 0];
        let mut s = CpSolver::new(&p).unwrap();
        for (i, &a) in addrs.iter().enumerate() {
            s.assign(id(i), a)
                .unwrap_or_else(|e| panic!("step {i}: {e:?}"));
        }
        let solution = s.solution().unwrap();
        assert!(solution.validate(&p).is_ok());
    }

    #[test]
    fn invariant_report_matches_build_mode() {
        let mut s = CpSolver::new(&examples::tiny()).unwrap();
        s.assign(id(0), 0).unwrap();
        let report = s.invariant_report();
        assert_eq!(report.violations, 0);
        if cfg!(feature = "debug-invariants") {
            assert!(report.checks > 0, "audit hooks ran");
        } else {
            assert_eq!(report.checks, 0);
        }
    }

    #[test]
    fn conflict_culprits_in_assignment_order() {
        let p = Problem::builder(14)
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 2))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        // Assign in non-id order to check culprits follow assignment order.
        s.assign(id(2), 0).unwrap();
        s.assign(id(0), 4).unwrap();
        s.assign(id(1), 8).unwrap();
        // Only [12, 14) is left for buffer 3; address 0 conflicts.
        let err = s.assign(id(3), 0).unwrap_err();
        assert_eq!(err.culprits, vec![id(2), id(0), id(1)]);
    }

    #[test]
    fn rank_survives_backtrack_and_reassignment() {
        // Unfix and refix in a different order: culprit ordering must
        // follow the *current* assignment order, not the original one.
        let p = Problem::builder(14)
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 2))
            .build()
            .unwrap();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(id(0), 0).unwrap();
        s.assign(id(1), 4).unwrap();
        s.pop_to_level(0);
        s.assign(id(1), 0).unwrap();
        s.assign(id(2), 4).unwrap();
        s.assign(id(0), 8).unwrap();
        let err = s.assign(id(3), 0).unwrap_err();
        assert_eq!(err.culprits, vec![id(1), id(2), id(0)]);
    }

    #[test]
    fn trail_entry_round_trips() {
        let e = TrailEntry::bounds(7, 10, 20, false);
        assert_eq!(e.key >> 2, 7);
        assert_eq!(e.key & 3, TAG_BOUNDS);
        let e = TrailEntry::bounds(7, 10, 20, true);
        assert_eq!(e.key & 3, TAG_BOUNDS_EMPTY);
        let e = TrailEntry::order(PairId::new(5));
        assert_eq!(e.key >> 2, 5);
        assert_eq!(e.key & 3, TAG_ORDER);
    }
}
