//! Cross-checks the CP search against exhaustive enumeration on small
//! random instances: feasibility answers must agree exactly, and every
//! returned solution must validate.

use proptest::prelude::*;
use tela_cp::search::solve_cp_only;
use tela_model::{Budget, Buffer, Problem, SolveOutcome};

/// Exhaustively decides feasibility by trying every address combination.
fn brute_force_feasible(problem: &Problem) -> bool {
    fn rec(problem: &Problem, chosen: &mut Vec<u64>) -> bool {
        let idx = chosen.len();
        if idx == problem.len() {
            return true;
        }
        let b = problem.buffers()[idx];
        let mut addr = 0u64;
        while addr + b.size() <= problem.capacity() {
            if addr.is_multiple_of(b.align()) {
                let ok = problem.buffers()[..idx]
                    .iter()
                    .enumerate()
                    .all(|(j, other)| {
                        !other.overlaps_in_time(&b)
                            || chosen[j] + other.size() <= addr
                            || addr + b.size() <= chosen[j]
                    });
                if ok {
                    chosen.push(addr);
                    if rec(problem, chosen) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            addr += 1;
        }
        false
    }
    rec(problem, &mut Vec::new())
}

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..6,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..6), 6u64..13).prop_map(|(buffers, capacity)| {
        // Every generated size (< 6) fits in every capacity (>= 6).
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn cp_search_matches_brute_force(problem in problem_strategy()) {
        let expected = brute_force_feasible(&problem);
        let (outcome, _) = solve_cp_only(&problem, &Budget::steps(1_000_000));
        match outcome {
            SolveOutcome::Solved(solution) => {
                prop_assert!(expected, "CP found a solution for an infeasible instance");
                prop_assert!(solution.validate(&problem).is_ok());
            }
            SolveOutcome::Infeasible => {
                prop_assert!(!expected, "CP reported infeasible but brute force solved it: {problem:?}");
            }
            SolveOutcome::GaveUp | SolveOutcome::BudgetExceeded | SolveOutcome::BestEffort(_) => {
                prop_assert!(false, "complete search cannot give up within budget");
            }
        }
    }

    #[test]
    fn cp_solutions_are_always_valid(problem in problem_strategy()) {
        let (outcome, _) = solve_cp_only(&problem, &Budget::steps(1_000_000));
        if let SolveOutcome::Solved(solution) = outcome {
            prop_assert!(solution.validate(&problem).is_ok());
        }
    }
}
