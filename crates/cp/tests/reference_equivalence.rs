//! Equivalence of the flat queue-driven solver against a naive
//! reference oracle.
//!
//! The production [`CpSolver`] earns its speed from machinery that is
//! easy to get subtly wrong: directional dirty-bit queues, per-slot
//! order-state bytes, per-level trail deduplication, and forced-order
//! detection inside propagation. The oracle here has none of that: it
//! re-applies every constraint touching a changed variable to fixpoint
//! after each operation and snapshots full state per decision level.
//! Bounds propagation is
//! monotone, so both must compute the same closure — identical Ok/Err
//! outcomes, domains, order decisions, and fixed sets after every
//! operation, including rollback equivalence after failures and
//! arbitrary backtracks.

use proptest::prelude::*;
use tela_cp::{CpSolver, Domain, OrderState, PairId};
use tela_model::{Buffer, BufferId, Problem};

/// Naive reference solver: same constraint semantics as [`CpSolver`]
/// (it reuses [`Domain`] for the bounds arithmetic), but exhaustive
/// re-application instead of queues and full-state snapshots instead of
/// a trail.
struct RefSolver {
    sizes: Vec<u64>,
    /// `(x, y)` buffer index pairs with `x < y`, sorted ascending —
    /// the same enumeration order `CpModel` assigns to `PairId`s.
    pairs: Vec<(usize, usize)>,
    domains: Vec<Domain>,
    orders: Vec<OrderState>,
    fixed: Vec<bool>,
    saved: Vec<(Vec<Domain>, Vec<OrderState>, Vec<bool>)>,
}

impl RefSolver {
    /// Seeds initial domains from the solver so both start identically.
    fn new(problem: &Problem, solver: &CpSolver) -> Self {
        let mut pairs: Vec<(usize, usize)> = problem
            .overlapping_pairs()
            .map(|(a, b)| {
                let (a, b) = (a.index(), b.index());
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        pairs.sort_unstable();
        RefSolver {
            sizes: problem.buffers().iter().map(|b| b.size()).collect(),
            domains: (0..problem.len())
                .map(|i| solver.domain(BufferId::new(i)))
                .collect(),
            orders: vec![OrderState::Undecided; pairs.len()],
            pairs,
            fixed: vec![false; problem.len()],
            saved: Vec::new(),
        }
    }

    fn level(&self) -> usize {
        self.saved.len()
    }

    fn push_level(&mut self) {
        self.saved.push((
            self.domains.clone(),
            self.orders.clone(),
            self.fixed.clone(),
        ));
    }

    /// Discards the current level, restoring its pre-push snapshot.
    fn pop_failed(&mut self) {
        let (domains, orders, fixed) = self.saved.pop().expect("level was pushed");
        self.domains = domains;
        self.orders = orders;
        self.fixed = fixed;
    }

    fn pop_to_level(&mut self, level: usize) {
        assert!(level <= self.level());
        if level < self.level() {
            let (domains, orders, fixed) = self.saved[level].clone();
            self.domains = domains;
            self.orders = orders;
            self.fixed = fixed;
            self.saved.truncate(level);
        }
    }

    fn assign(&mut self, idx: usize, addr: u64) -> Result<(), ()> {
        self.push_level();
        if !self.domains[idx].contains(addr) {
            self.pop_failed();
            return Err(());
        }
        self.domains[idx].fix(addr);
        self.fixed[idx] = true;
        self.close(vec![idx]).inspect_err(|()| self.pop_failed())
    }

    fn decide(&mut self, pair: usize, state: OrderState) -> Result<(), ()> {
        assert_eq!(self.orders[pair], OrderState::Undecided);
        self.push_level();
        self.orders[pair] = state;
        let (x, y) = self.pairs[pair];
        let mut dirty = Vec::new();
        let first = match state {
            OrderState::FirstBelow => self.apply(x, y, &mut dirty),
            OrderState::SecondBelow => self.apply(y, x, &mut dirty),
            OrderState::Undecided => unreachable!("cannot decide to Undecided"),
        };
        first
            .and_then(|()| self.close(dirty))
            .inspect_err(|()| self.pop_failed())
    }

    /// Could `below` be placed entirely under `above`?
    fn possible(&self, below: usize, above: usize) -> bool {
        let (db, da) = (&self.domains[below], &self.domains[above]);
        !db.is_empty() && !da.is_empty() && db.lo() + self.sizes[below] <= da.hi()
    }

    /// Enforces `pos(below) + size(below) <= pos(above)`, pushing any
    /// variable whose bounds moved onto the dirty worklist.
    fn apply(&mut self, below: usize, above: usize, dirty: &mut Vec<usize>) -> Result<(), ()> {
        let lo_bound = self.domains[below].lo() + self.sizes[below];
        if self.domains[above].tighten_lo(lo_bound) {
            if self.domains[above].is_empty() {
                return Err(());
            }
            dirty.push(above);
        }
        match self.domains[above].hi().checked_sub(self.sizes[below]) {
            Some(bound) => {
                if self.domains[below].tighten_hi(bound) {
                    if self.domains[below].is_empty() {
                        return Err(());
                    }
                    dirty.push(below);
                }
            }
            None => return Err(()),
        }
        Ok(())
    }

    /// Incremental closure from the seed variables: every pair touching
    /// a dirty variable is fully re-applied (forced orders committed),
    /// and newly moved variables join the worklist. The solver is
    /// *incremental by contract* — a pair that is forced in the root
    /// state stays undecided until a chain of real changes reaches one
    /// of its endpoints — so the oracle must not sweep unreached pairs.
    fn close(&mut self, mut dirty: Vec<usize>) -> Result<(), ()> {
        while let Some(v) = dirty.pop() {
            for p in 0..self.pairs.len() {
                let (x, y) = self.pairs[p];
                if x != v && y != v {
                    continue;
                }
                match self.orders[p] {
                    OrderState::Undecided => match (self.possible(x, y), self.possible(y, x)) {
                        (false, false) => return Err(()),
                        (true, false) => {
                            self.orders[p] = OrderState::FirstBelow;
                            self.apply(x, y, &mut dirty)?;
                        }
                        (false, true) => {
                            self.orders[p] = OrderState::SecondBelow;
                            self.apply(y, x, &mut dirty)?;
                        }
                        (true, true) => {}
                    },
                    OrderState::FirstBelow => self.apply(x, y, &mut dirty)?,
                    OrderState::SecondBelow => self.apply(y, x, &mut dirty)?,
                }
            }
        }
        Ok(())
    }

    /// Linear-scan twin of [`CpSolver::min_feasible_pos_at_least`]:
    /// lowest aligned in-domain address clear of every *fixed*
    /// time-overlapping neighbor.
    fn min_pos(&self, problem: &Problem, idx: usize, from: u64) -> Option<u64> {
        let d = &self.domains[idx];
        if d.is_empty() {
            return None;
        }
        let me = problem.buffers()[idx];
        let base = d.lo().max(from);
        let mut addr = base + (me.align() - base % me.align()) % me.align();
        while addr <= d.hi() {
            let free = (0..problem.len()).all(|j| {
                let other = problem.buffers()[j];
                j == idx || !self.fixed[j] || !other.overlaps_in_time(&me) || {
                    let pos = self.domains[j].lo();
                    addr + me.size() <= pos || pos + other.size() <= addr
                }
            });
            if free {
                return Some(addr);
            }
            addr += me.align();
        }
        None
    }
}

/// Full observable-state comparison after each operation.
fn assert_state_matches(solver: &CpSolver, reference: &RefSolver, op: usize) {
    assert_eq!(solver.level(), reference.level(), "level after op {op}");
    for i in 0..reference.domains.len() {
        let id = BufferId::new(i);
        assert_eq!(
            solver.domain(id),
            reference.domains[i],
            "domain of buffer {i} after op {op}"
        );
        assert_eq!(
            solver.is_fixed(id),
            reference.fixed[i],
            "fixed flag of buffer {i} after op {op}"
        );
        let expected = reference.fixed[i].then(|| reference.domains[i].lo());
        assert_eq!(
            solver.assignment(id),
            expected,
            "assignment {i} after op {op}"
        );
    }
    for p in 0..reference.pairs.len() {
        assert_eq!(
            solver.order(PairId::new(p as u32)),
            reference.orders[p],
            "order of pair {p} after op {op}"
        );
    }
}

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..6,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..7), 6u64..14).prop_map(|(buffers, capacity)| {
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

/// `(kind, a, b)` op codes: 0–1 assign, 2 decide, 3 backtrack.
fn script_strategy() -> impl Strategy<Value = Vec<(u8, u16, u16)>> {
    prop::collection::vec((0u8..4, 0u16..4096, 0u16..4096), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of assignments (in- and out-of-domain),
    /// explicit order decisions, and multi-level backtracks: the flat
    /// solver and the oracle agree on every Ok/Err outcome and on the
    /// complete observable state after every operation — success and
    /// rollback alike.
    #[test]
    fn flat_solver_matches_reference_oracle(
        problem in problem_strategy(),
        script in script_strategy(),
    ) {
        // Contention-over-capacity instances are rejected at model build
        // (trivially infeasible, no search state to compare) — skip them.
        if std::env::var_os("EQUIV_DEBUG").is_some() {
            eprintln!("case: {problem:?} script {script:?}");
        }
        let Ok(mut solver) = CpSolver::new(&problem) else {
            continue;
        };
        let mut reference = RefSolver::new(&problem, &solver);
        assert_state_matches(&solver, &reference, 0);
        prop_assert_eq!(solver.model().pair_count(), reference.pairs.len());

        for (op, &(kind, a, b)) in script.iter().enumerate() {
            match kind {
                0 | 1 => {
                    let unfixed: Vec<usize> =
                        (0..problem.len()).filter(|&i| !reference.fixed[i]).collect();
                    let Some(&idx) = unfixed.get(a as usize % unfixed.len().max(1)) else {
                        continue;
                    };
                    let id = BufferId::new(idx);
                    // Sweep query equivalence on the live state.
                    prop_assert_eq!(
                        solver.min_feasible_pos(id),
                        reference.min_pos(&problem, idx, 0),
                        "min_feasible_pos({}) before op {}", idx, op
                    );
                    let d = reference.domains[idx];
                    // `+ 3` overshoots the domain for some scripts, so the
                    // out-of-domain rejection path is exercised too.
                    let steps = (d.hi() - d.lo()) / d.align();
                    let addr = d.lo() + (b as u64 % (steps + 3)) * d.align();
                    let got = solver.assign_deferred(id, addr);
                    let want = reference.assign(idx, addr);
                    prop_assert_eq!(
                        got.is_err(), want.is_err(),
                        "assign({}, {}) outcome at op {}", idx, addr, op
                    );
                }
                2 => {
                    let undecided: Vec<usize> = (0..reference.pairs.len())
                        .filter(|&p| reference.orders[p] == OrderState::Undecided)
                        .collect();
                    let Some(&p) = undecided.get(a as usize % undecided.len().max(1)) else {
                        continue;
                    };
                    let state = if b & 1 == 0 {
                        OrderState::FirstBelow
                    } else {
                        OrderState::SecondBelow
                    };
                    let got = solver.decide(PairId::new(p as u32), state);
                    let want = reference.decide(p, state);
                    prop_assert_eq!(
                        got.is_err(), want.is_err(),
                        "decide({}, {:?}) outcome at op {}", p, state, op
                    );
                }
                _ => {
                    let target = a as usize % (solver.level() + 1);
                    solver.pop_to_level(target);
                    reference.pop_to_level(target);
                }
            }
            assert_state_matches(&solver, &reference, op + 1);
        }

        // Final sweep-query agreement, including non-zero `from` offsets.
        for i in 0..problem.len() {
            for from in [0, 1, 3, 7] {
                prop_assert_eq!(
                    solver.min_feasible_pos_at_least(BufferId::new(i), from),
                    reference.min_pos(&problem, i, from),
                    "final min_feasible_pos_at_least({}, {})", i, from
                );
            }
        }
    }
}

/// Regression shape for the fix-bit: `b0`'s domain is pinned to a single
/// address by its alignment, so fixing it moves *no* bound — yet the fix
/// forces the undecided pair (b1 can no longer fit below b0). A queue
/// keyed only on moved bounds would skip the pair and leave a fixed pair
/// undecided; the oracle and the `DIRTY_FIX` bit both catch it.
#[test]
fn no_bound_movement_assign_still_forces_undecided_pairs() {
    let p = Problem::builder(8)
        .buffer(Buffer::new(0, 4, 4).with_align(8)) // domain pinned to {0}
        .buffer(Buffer::new(0, 4, 4))
        .build()
        .unwrap();
    let mut solver = CpSolver::new(&p).unwrap();
    let mut reference = RefSolver::new(&p, &solver);
    assert!(
        solver.domain(BufferId::new(0)).is_fixed(),
        "pinned by alignment"
    );

    solver.assign(BufferId::new(0), 0).unwrap();
    reference.assign(0, 0).unwrap();
    assert_state_matches(&solver, &reference, 1);
    assert_eq!(solver.order(PairId::new(0)), OrderState::FirstBelow);
    assert_eq!(solver.domain(BufferId::new(1)).lo(), 4);
}
