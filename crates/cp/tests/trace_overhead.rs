//! Zero-overhead guard for disabled tracing on the propagation hot path.
//!
//! A *disabled* tracer must be free: the same propagation-heavy workload
//! may not allocate even once more than the bare solver. The disabled
//! check is a single predicted branch on an `Option`, so any difference
//! here means an eager field/string build snuck in ahead of the
//! `enabled()` guard.
//!
//! Not meaningful under `debug-invariants` (the audit allocates by
//! design); see `propagate_allocs.rs` for the bare-solver bound.

#![cfg(not(feature = "debug-invariants"))]

mod common;

// One test function on purpose: the allocation counter is process-global,
// so a second concurrently-running #[test] in this binary would
// contaminate the deltas. Both measurements run sequentially here.
#[test]
fn disabled_tracer_adds_zero_allocations() {
    let n = 32;
    let p = common::full_overlap(n);

    let (bare_allocs, bare_propagations, _) = common::min_measure(&p, n, || None);
    let (traced_allocs, traced_propagations, _) =
        common::min_measure(&p, n, || Some(tela_trace::Tracer::disabled()));

    assert_eq!(traced_propagations, bare_propagations);
    assert_eq!(
        traced_allocs,
        bare_allocs,
        "a disabled tracer added {} allocations to the propagate loop",
        traced_allocs.saturating_sub(bare_allocs)
    );

    // A *decorated* disabled tracer — the shape tela-server hands the
    // solve path when a request does not opt into tracing — must be
    // just as free: `with_field` on a disabled tracer returns another
    // disabled tracer, and the common-field vector must never be built
    // or cloned ahead of the `enabled()` guard.
    let (decorated_allocs, decorated_propagations, _) = common::min_measure(&p, n, || {
        Some(tela_trace::Tracer::disabled().with_field("request", 7u64))
    });
    assert_eq!(decorated_propagations, bare_propagations);
    assert_eq!(
        decorated_allocs,
        bare_allocs,
        "a decorated disabled tracer added {} allocations to the propagate loop",
        decorated_allocs.saturating_sub(bare_allocs)
    );
}
