//! Heap-allocation regression guard for the propagation hot path.
//!
//! `CpSolver::propagate` used to clone each popped variable's pair list
//! (`pairs_of(var).to_vec()`) on every queue pop, allocating once per
//! pop in the solver's innermost loop. This test counts global
//! allocations across a propagation-heavy assignment sequence and fails
//! if per-pop allocation sneaks back in.
//!
//! Not meaningful under `debug-invariants`: the audit allocates domain
//! snapshots and occupancy rebuilds on every decision by design.

#![cfg(not(feature = "debug-invariants"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tela_cp::CpSolver;
use tela_model::{Buffer, BufferId, Problem};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `n` fully-overlapping unit buffers: the quadratic pair set makes
/// propagation (not search) the dominant cost, mirroring the paper's
/// full-overlap microbenchmark.
fn full_overlap(n: usize) -> Problem {
    Problem::builder(n as u64)
        .buffers((0..n).map(|_| Buffer::new(0, 4, 1)))
        .build()
        .unwrap()
}

/// Runs the propagation-heavy assignment sequence and returns
/// `(allocations, propagations, pops_lower_bound)`. `tracer` is
/// installed before the loop when given, so the same workload measures
/// the bare solver and the tracing-disabled solver identically.
fn measure(p: &Problem, n: usize, tracer: Option<tela_trace::Tracer>) -> (u64, u64, u64) {
    let mut solver = CpSolver::new(p).unwrap();
    if let Some(tracer) = tracer {
        solver.set_tracer(tracer);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut pops_lower_bound = 0u64;
    for i in 0..n {
        solver.assign(BufferId::new(i), i as u64).unwrap();
        pops_lower_bound += 1;
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(solver.solution().is_some());
    (allocs, solver.propagations(), pops_lower_bound)
}

// One test function on purpose: the allocation counter is global, so a
// second concurrently-running #[test] in this binary would contaminate
// the deltas. Both measurements run sequentially here instead.
#[test]
fn propagation_does_not_allocate_per_pop() {
    let n = 32;
    let p = full_overlap(n);

    // The counting allocator is process-global, so the libtest harness
    // thread occasionally leaks a stray allocation or two into the
    // window. The solver's own count is deterministic and the noise is
    // purely additive, so the minimum over a few repetitions is exact.
    let min_allocs = |tracer: fn() -> Option<tela_trace::Tracer>| {
        (0..5)
            .map(|_| measure(&p, n, tracer()))
            .min_by_key(|&(allocs, ..)| allocs)
            .unwrap()
    };

    let (allocs, propagations, pops_lower_bound) = min_allocs(|| None);
    assert!(pops_lower_bound > 0 && propagations > pops_lower_bound);
    // With the per-pop `to_vec()`, this sequence measures 673
    // allocations (one per queue pop, 528 pops, plus 145 of amortized
    // growth); the allocation-free loop measures exactly the 145. The
    // bound sits between the two so a reintroduced per-pop allocation
    // fails loudly while normal amortized Vec growth (trail, occupancy
    // lists, queue) never trips it.
    let bound = propagations / (n as u64 - 1);
    assert!(
        allocs < 400,
        "propagation hot path allocated {allocs} times \
         ({propagations} propagations, >= {bound} pops)"
    );

    // Trace-overhead guard: a *disabled* tracer must be free on the hot
    // path — same workload, not one extra allocation. The disabled
    // check is a single predicted branch on an `Option`, so any
    // difference here means an eager field/string build snuck in ahead
    // of the `enabled()` guard.
    let (traced_allocs, traced_propagations, _) =
        min_allocs(|| Some(tela_trace::Tracer::disabled()));
    assert_eq!(traced_propagations, propagations);
    assert_eq!(
        traced_allocs,
        allocs,
        "a disabled tracer added {} allocations to the propagate loop",
        traced_allocs.saturating_sub(allocs)
    );
}
