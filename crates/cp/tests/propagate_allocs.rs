//! Heap-allocation regression guard for the propagation hot path.
//!
//! `CpSolver::propagate` used to clone each popped variable's pair list
//! (`pairs_of(var).to_vec()`) on every queue pop, allocating once per
//! pop in the solver's innermost loop. This test counts global
//! allocations across a propagation-heavy assignment sequence and fails
//! if per-pop allocation sneaks back in. (The static face of the same
//! invariant is tela-lint's `no-hot-alloc` rule on the marked
//! `propagate` function.)
//!
//! Not meaningful under `debug-invariants`: the audit allocates domain
//! snapshots and occupancy rebuilds on every decision by design.

#![cfg(not(feature = "debug-invariants"))]

mod common;

#[test]
fn propagation_does_not_allocate_per_pop() {
    let n = 32;
    let p = common::full_overlap(n);

    let (allocs, propagations, pops_lower_bound) = common::min_measure(&p, n, || None);
    assert!(pops_lower_bound > 0 && propagations > pops_lower_bound);
    // With the per-pop `to_vec()`, this sequence measures 673
    // allocations (one per queue pop, 528 pops, plus 145 of amortized
    // growth); the allocation-free loop measures exactly the 145. The
    // bound sits between the two so a reintroduced per-pop allocation
    // fails loudly while normal amortized Vec growth (trail, occupancy
    // lists, queue) never trips it.
    let bound = propagations / (n as u64 - 1);
    assert!(
        allocs < 400,
        "propagation hot path allocated {allocs} times \
         ({propagations} propagations, >= {bound} pops)"
    );
}
