//! Heap-allocation regression guard for the propagation hot path.
//!
//! `CpSolver::propagate` used to clone each popped variable's pair list
//! (`pairs_of(var).to_vec()`) on every queue pop, allocating once per
//! pop in the solver's innermost loop. This test counts global
//! allocations across a propagation-heavy assignment sequence and fails
//! if per-pop allocation sneaks back in. (The static face of the same
//! invariant is tela-lint's `no-hot-alloc` rule on the marked
//! `propagate` function.)
//!
//! Not meaningful under `debug-invariants`: the audit allocates domain
//! snapshots and occupancy rebuilds on every decision by design.

#![cfg(not(feature = "debug-invariants"))]

mod common;

use tela_cp::CpSolver;
use tela_lint::testing::count_allocations;
use tela_model::BufferId;

/// One full allocate→backtrack→reallocate cycle with sweep queries and
/// a deferred minor-backtrack mixed in — the steady-state shape of the
/// search loop. Returns the allocation count for the cycle.
fn steady_state_cycle(solver: &mut CpSolver, n: usize) -> u64 {
    let (allocs, ()) = count_allocations(|| {
        for i in 0..n {
            let id = BufferId::new(i);
            // Sweep path: bitset-timeline lowest-fit over the fixed set.
            let pos = solver.min_feasible_pos(id).expect("placeable");
            solver.assign_deferred(id, pos).expect("consistent");
            if i == n / 2 {
                // Minor backtrack: a deliberately colliding assignment
                // fails and rolls back. The deferred seed is `Copy`; no
                // conflict materialization, no allocation.
                let last = BufferId::new(i - 1);
                let occupied = solver.assignment(last).expect("just placed");
                solver
                    .assign_deferred(BufferId::new(i + 1), occupied)
                    .expect_err("collides with a placed buffer");
            }
        }
        solver.pop_to_level(0);
    });
    allocs
}

#[test]
fn steady_state_search_performs_zero_allocations() {
    let n = 32;
    let p = common::full_overlap(n);
    let mut solver = CpSolver::new(&p).unwrap();
    // Warm-up cycle: trail, queue, levels, and sweep scratch grow to
    // their steady-state capacity here and are reused afterwards.
    steady_state_cycle(&mut solver, n);
    // The counting allocator is process-global, so a harness thread can
    // leak a stray allocation into one window; the solver's own count
    // is deterministic, so the minimum over repetitions is exact.
    let allocs = (0..5)
        .map(|_| steady_state_cycle(&mut solver, n))
        .min()
        .unwrap();
    assert_eq!(
        allocs, 0,
        "steady-state propagate/sweep/backtrack cycle must not allocate"
    );
}

#[test]
fn propagation_does_not_allocate_per_pop() {
    let n = 32;
    let p = common::full_overlap(n);

    let (allocs, propagations, pops_lower_bound) = common::min_measure(&p, n, || None);
    assert!(pops_lower_bound > 0 && propagations > pops_lower_bound);
    // With the per-pop `to_vec()`, this sequence measures 673
    // allocations (one per queue pop, 528 pops, plus 145 of amortized
    // growth); the allocation-free loop measures exactly the 145. The
    // bound sits between the two so a reintroduced per-pop allocation
    // fails loudly while normal amortized Vec growth (trail, occupancy
    // lists, queue) never trips it.
    let bound = propagations / (n as u64 - 1);
    assert!(
        allocs < 400,
        "propagation hot path allocated {allocs} times \
         ({propagations} propagations, >= {bound} pops)"
    );
}
