//! Shared workload for the allocation-guard test binaries
//! (`propagate_allocs`, `trace_overhead`), built on the audited
//! counting allocator from `tela_lint::testing`.

use tela_cp::CpSolver;
use tela_lint::testing::{count_allocations, CountingAlloc};
use tela_model::{Buffer, BufferId, Problem};
use tela_trace::Tracer;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc::new();

/// `n` fully-overlapping unit buffers: the quadratic pair set makes
/// propagation (not search) the dominant cost, mirroring the paper's
/// full-overlap microbenchmark.
pub fn full_overlap(n: usize) -> Problem {
    Problem::builder(n as u64)
        .buffers((0..n).map(|_| Buffer::new(0, 4, 1)))
        .build()
        .unwrap()
}

/// Runs the propagation-heavy assignment sequence and returns
/// `(allocations, propagations, pops_lower_bound)`. `tracer` is
/// installed before the loop when given, so the same workload measures
/// the bare solver and the tracing-disabled solver identically.
pub fn measure(p: &Problem, n: usize, tracer: Option<Tracer>) -> (u64, u64, u64) {
    let mut solver = CpSolver::new(p).unwrap();
    if let Some(tracer) = tracer {
        solver.set_tracer(tracer);
    }
    let mut pops_lower_bound = 0u64;
    let (allocs, ()) = count_allocations(|| {
        for i in 0..n {
            solver.assign(BufferId::new(i), i as u64).unwrap();
            pops_lower_bound += 1;
        }
    });
    assert!(solver.solution().is_some());
    (allocs, solver.propagations(), pops_lower_bound)
}

/// Minimum measurement over a few repetitions: the counting allocator is
/// process-global, so the libtest harness thread occasionally leaks a
/// stray allocation or two into the window. The solver's own count is
/// deterministic and the noise is purely additive, so the minimum is
/// exact.
pub fn min_measure(p: &Problem, n: usize, tracer: fn() -> Option<Tracer>) -> (u64, u64, u64) {
    (0..5)
        .map(|_| measure(p, n, tracer()))
        .min_by_key(|&(allocs, ..)| allocs)
        .unwrap()
}
