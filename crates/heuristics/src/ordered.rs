//! Stand-alone single-ordering greedy allocators from the literature the
//! paper compares against (§3.1, §7.2):
//!
//! - [`solve_by_size`] — Lee & Pisarchyk's "greedy by size" ordering
//!   (largest blocks first), the strongest published heuristic family
//!   for TFLite-style inference workloads.
//! - [`solve_by_area`] / [`solve_by_lifetime`] — the other two orderings
//!   TelaMalloc combines.
//! - [`solve_best_fit`] — Sekiyama et al.'s profile-guided best-fit:
//!   repeatedly place whichever unplaced block currently fits lowest.
//!
//! Unlike the production [`greedy`](crate::greedy) baseline these use a
//! single static criterion, which is exactly what the paper's Figure 14
//! ablates (there, inside the full search; here, without backtracking).

use tela_model::{Address, BufferId, Problem};

use crate::placer::{place_in_order, Placer};
use crate::{HeuristicResult, SelectionStrategy};

/// Greedy by decreasing size (Lee & Pisarchyk).
///
/// # Example
///
/// ```
/// use tela_heuristics::ordered::solve_by_size;
/// use tela_model::examples;
///
/// let r = solve_by_size(&examples::tiny());
/// assert_eq!(r.peak, 16);
/// ```
pub fn solve_by_size(problem: &Problem) -> HeuristicResult {
    solve_with_strategy(problem, SelectionStrategy::MaxSize)
}

/// Greedy by decreasing `size × lifetime`.
pub fn solve_by_area(problem: &Problem) -> HeuristicResult {
    solve_with_strategy(problem, SelectionStrategy::MaxArea)
}

/// Greedy by decreasing lifetime.
pub fn solve_by_lifetime(problem: &Problem) -> HeuristicResult {
    solve_with_strategy(problem, SelectionStrategy::MaxLifetime)
}

fn solve_with_strategy(problem: &Problem, strategy: SelectionStrategy) -> HeuristicResult {
    let mut order: Vec<BufferId> = problem.iter().map(|(id, _)| id).collect();
    order.sort_by_key(|&id| (std::cmp::Reverse(strategy.key(problem, id)), id.index()));
    place_in_order(problem, &order)
}

/// Best-fit in the sense of Sekiyama et al.: at every step, place the
/// unplaced block that currently fits at the lowest address (ties by
/// larger size, then id).
pub fn solve_best_fit(problem: &Problem) -> HeuristicResult {
    let mut placer = Placer::new(problem);
    let mut remaining: Vec<BufferId> = problem.iter().map(|(id, _)| id).collect();
    while !remaining.is_empty() {
        // A block whose sweep overflows the address space sorts last
        // (`Address::MAX`); if even the best candidate cannot be placed,
        // abort to "no solution" rather than panic.
        let Some((pos, _)) = remaining.iter().enumerate().min_by_key(|&(_, &id)| {
            let b = problem.buffer(id);
            (
                placer.lowest_fit(id).unwrap_or(Address::MAX),
                std::cmp::Reverse(b.size()),
                id.index(),
            )
        }) else {
            break;
        };
        let id = remaining.swap_remove(pos);
        if placer.place(id).is_none() {
            return HeuristicResult {
                solution: None,
                peak: Address::MAX,
            };
        }
    }
    placer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn all_orderings_solve_easy_chain() {
        let p = examples::tiny();
        for solve in [
            solve_by_size,
            solve_by_area,
            solve_by_lifetime,
            solve_best_fit,
        ] {
            let r = solve(&p);
            assert_eq!(r.peak, 16);
            assert!(r.solution.unwrap().validate(&p).is_ok());
        }
    }

    #[test]
    fn by_size_places_largest_first() {
        // The large block must land at address 0 regardless of id order.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 3))
            .buffer(Buffer::new(0, 2, 50))
            .build()
            .unwrap();
        let r = solve_by_size(&p);
        let s = r.solution.unwrap();
        assert_eq!(s.addresses()[1], 0);
        assert_eq!(s.addresses()[0], 50);
    }

    #[test]
    fn by_lifetime_places_longest_first() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 10))
            .buffer(Buffer::new(0, 20, 10))
            .build()
            .unwrap();
        let s = solve_by_lifetime(&p).solution.unwrap();
        assert_eq!(s.addresses()[1], 0);
    }

    #[test]
    fn best_fit_prefers_lowest_landing_block() {
        // After nothing is placed, all blocks fit at 0; best-fit picks
        // the largest. Then the next block must go on top only where it
        // overlaps.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 4, 10))
            .buffer(Buffer::new(2, 6, 5))
            .buffer(Buffer::new(4, 8, 7))
            .build()
            .unwrap();
        let r = solve_best_fit(&p);
        let s = r.solution.unwrap();
        assert!(s.validate(&p).is_ok());
        // Block 2 overlaps only block 1; with block 0 at [0,10) and
        // block 1 at [10,15), block 2 lands at 0 once block 0 is dead at
        // t >= 4... it overlaps block 1 in time (4..6) so it must avoid
        // [10, 15) only: address 0.
        assert_eq!(s.addresses()[2], 0);
    }

    #[test]
    fn single_orderings_can_fail_where_production_greedy_succeeds() {
        // On the model workloads the contention-aware production
        // heuristic should be at least as good as any single static
        // ordering on average.
        use tela_workloads::{problem_with_slack, ModelKind};
        let mut production_wins = 0;
        let mut single_wins = 0;
        for kind in [ModelKind::Fpn, ModelKind::OpenPose, ModelKind::ResNet152] {
            let p = problem_with_slack(kind.generate(0), 10);
            let production = crate::greedy::solve(&p).peak;
            let best_single = [solve_by_size, solve_by_area, solve_by_lifetime]
                .iter()
                .map(|f| f(&p).peak)
                .min()
                .expect("non-empty");
            if production <= best_single {
                production_wins += 1;
            } else {
                single_wins += 1;
            }
        }
        assert!(production_wins >= single_wins);
    }
}
