use tela_model::{Address, Buffer, Problem, TimeStep};

/// The "skyline" of placed buffers: for each time slot, the maximum
/// address in use (paper §3.1, Figure 4).
///
/// Skyline-based heuristics only place blocks *on top of* the skyline —
/// they never tuck a block underneath an overhang. That restriction is
/// what makes them fast, and also what TelaMalloc's solver-guided
/// placement (§5.2) relaxes.
///
/// # Example
///
/// ```
/// use tela_heuristics::Skyline;
/// use tela_model::Buffer;
///
/// let mut sky = Skyline::new(10);
/// let a = Buffer::new(0, 4, 16);
/// let b = Buffer::new(2, 6, 8);
/// assert_eq!(sky.place(&a), Some(0));
/// assert_eq!(sky.place(&b), Some(16)); // rests on top of `a` where they overlap
/// assert_eq!(sky.top(3), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skyline {
    tops: Vec<Address>,
}

impl Skyline {
    /// Creates an empty skyline covering `horizon` time steps.
    pub fn new(horizon: TimeStep) -> Self {
        Skyline {
            tops: vec![0; horizon as usize],
        }
    }

    /// Creates an empty skyline sized for `problem`.
    pub fn for_problem(problem: &Problem) -> Self {
        Skyline::new(problem.horizon())
    }

    /// The current skyline height at time step `t` (0 past the horizon).
    pub fn top(&self, t: TimeStep) -> Address {
        self.tops.get(t as usize).copied().unwrap_or(0)
    }

    /// The maximum height over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the horizon.
    pub fn max_over(&self, start: TimeStep, end: TimeStep) -> Address {
        self.tops[start as usize..end as usize]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// The lowest skyline address at which `buffer` can rest, honouring
    /// its alignment (without placing it). `None` means aligning past the
    /// current skyline would overflow the address space — the block
    /// cannot rest anywhere.
    pub fn position_for(&self, buffer: &Buffer) -> Option<Address> {
        let base = self.max_over(buffer.start(), buffer.end());
        let addr = buffer.align_up(base)?;
        addr.checked_add(buffer.size())?;
        Some(addr)
    }

    /// Places `buffer` on top of the skyline, returning its address and
    /// raising the skyline over its live range, or `None` (leaving the
    /// skyline untouched) when no in-range resting position exists.
    pub fn place(&mut self, buffer: &Buffer) -> Option<Address> {
        let addr = self.position_for(buffer)?;
        let new_top = addr + buffer.size();
        for t in &mut self.tops[buffer.start() as usize..buffer.end() as usize] {
            *t = new_top;
        }
        Some(addr)
    }

    /// The overall peak of the skyline.
    pub fn peak(&self) -> Address {
        self.tops.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_skyline_is_flat_zero() {
        let sky = Skyline::new(5);
        assert_eq!(sky.peak(), 0);
        assert_eq!(sky.top(3), 0);
        assert_eq!(sky.top(99), 0);
    }

    #[test]
    fn disjoint_buffers_share_ground_level() {
        let mut sky = Skyline::new(10);
        assert_eq!(sky.place(&Buffer::new(0, 3, 7)), Some(0));
        assert_eq!(sky.place(&Buffer::new(3, 6, 9)), Some(0));
        assert_eq!(sky.peak(), 9);
    }

    #[test]
    fn overlapping_buffers_stack() {
        let mut sky = Skyline::new(10);
        sky.place(&Buffer::new(0, 5, 4));
        assert_eq!(sky.place(&Buffer::new(3, 8, 4)), Some(4));
        assert_eq!(sky.place(&Buffer::new(7, 9, 4)), Some(8));
        assert_eq!(sky.peak(), 12);
    }

    #[test]
    fn skyline_never_fills_holes() {
        // A tall block then a short one leave a "step"; a third block
        // overlapping only the short one still rests on the step top at
        // its own range, not under the overhang.
        let mut sky = Skyline::new(10);
        sky.place(&Buffer::new(0, 4, 10));
        sky.place(&Buffer::new(4, 8, 2));
        // This block overlaps only [4, 8) where the skyline is 2.
        assert_eq!(sky.place(&Buffer::new(5, 7, 3)), Some(2));
    }

    #[test]
    fn alignment_rounds_resting_position() {
        let mut sky = Skyline::new(10);
        sky.place(&Buffer::new(0, 5, 10));
        let aligned = Buffer::new(2, 4, 8).with_align(32);
        assert_eq!(sky.position_for(&aligned), Some(32));
        assert_eq!(sky.place(&aligned), Some(32));
        assert_eq!(sky.top(3), 40);
    }

    #[test]
    fn max_over_reflects_partial_ranges() {
        let mut sky = Skyline::new(10);
        sky.place(&Buffer::new(0, 2, 5));
        sky.place(&Buffer::new(4, 6, 3));
        assert_eq!(sky.max_over(0, 2), 5);
        assert_eq!(sky.max_over(2, 4), 0);
        assert_eq!(sky.max_over(0, 6), 5);
    }
}
