use tela_model::{BufferId, Problem};

/// Block-selection strategies compared in the paper's Figure 14.
///
/// Each strategy ranks the unplaced blocks; a search places the
/// top-ranked block next. The first three are the heuristics TelaMalloc
/// combines (§5.1); [`SelectionStrategy::LowestPosition`] is the best-fit
/// strategy of Sekiyama et al. and is rank-neutral here (the position
/// criterion is applied by the search itself, which knows the current
/// placement state).
///
/// # Example
///
/// ```
/// use tela_heuristics::SelectionStrategy;
/// use tela_model::examples;
///
/// let p = examples::figure1();
/// let ids: Vec<_> = p.iter().map(|(id, _)| id).collect();
/// let best = SelectionStrategy::MaxSize.pick(&p, ids.iter().copied());
/// assert_eq!(p.buffer(best.unwrap()).size(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// Largest `end - start` first — "the block with the longest
    /// lifetime (it likely affects the most constraints)".
    MaxLifetime,
    /// Largest size first (Lee & Pisarchyk's ordering).
    MaxSize,
    /// Largest `size × lifetime` first.
    MaxArea,
    /// No intrinsic ranking: the search picks the block that can be
    /// placed at the lowest position (best-fit, Sekiyama et al.).
    LowestPosition,
}

impl SelectionStrategy {
    /// The three strategies TelaMalloc tries at every step, in the
    /// paper's order (§5.1).
    pub const TELAMALLOC_ORDER: [SelectionStrategy; 3] = [
        SelectionStrategy::MaxLifetime,
        SelectionStrategy::MaxSize,
        SelectionStrategy::MaxArea,
    ];

    /// Every strategy, in Figure 14's comparison order — the
    /// enumeration portfolio races and ablation sweeps iterate.
    pub const ALL: [SelectionStrategy; 4] = [
        SelectionStrategy::MaxLifetime,
        SelectionStrategy::MaxSize,
        SelectionStrategy::MaxArea,
        SelectionStrategy::LowestPosition,
    ];

    /// The ranking key of `id` under this strategy — higher is better.
    /// Returns 0 for [`SelectionStrategy::LowestPosition`], which has no
    /// intrinsic key.
    pub fn key(&self, problem: &Problem, id: BufferId) -> u128 {
        let b = problem.buffer(id);
        match self {
            SelectionStrategy::MaxLifetime => u128::from(b.lifetime()),
            SelectionStrategy::MaxSize => u128::from(b.size()),
            SelectionStrategy::MaxArea => b.area(),
            SelectionStrategy::LowestPosition => 0,
        }
    }

    /// Picks the best block among `candidates` under this strategy, with
    /// deterministic tie-breaking by buffer id. Returns `None` for an
    /// empty candidate set. For [`SelectionStrategy::LowestPosition`]
    /// this returns the first candidate (the search applies the position
    /// criterion itself).
    pub fn pick<I>(&self, problem: &Problem, candidates: I) -> Option<BufferId>
    where
        I: IntoIterator<Item = BufferId>,
    {
        match self {
            SelectionStrategy::LowestPosition => candidates.into_iter().next(),
            _ => candidates
                .into_iter()
                .max_by_key(|&id| (self.key(problem, id), std::cmp::Reverse(id.index()))),
        }
    }
}

impl std::fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SelectionStrategy::MaxLifetime => "max-lifetime",
            SelectionStrategy::MaxSize => "max-size",
            SelectionStrategy::MaxArea => "max-area",
            SelectionStrategy::LowestPosition => "lowest-position",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{Buffer, Problem};

    fn sample() -> Problem {
        Problem::builder(100)
            .buffer(Buffer::new(0, 10, 2)) // lifetime 10, size 2, area 20
            .buffer(Buffer::new(0, 2, 9)) // lifetime 2, size 9, area 18
            .buffer(Buffer::new(0, 7, 4)) // lifetime 7, size 4, area 28
            .build()
            .unwrap()
    }

    fn ids(p: &Problem) -> Vec<BufferId> {
        p.iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn max_lifetime_picks_longest() {
        let p = sample();
        let pick = SelectionStrategy::MaxLifetime.pick(&p, ids(&p));
        assert_eq!(pick, Some(BufferId::new(0)));
    }

    #[test]
    fn max_size_picks_largest() {
        let p = sample();
        let pick = SelectionStrategy::MaxSize.pick(&p, ids(&p));
        assert_eq!(pick, Some(BufferId::new(1)));
    }

    #[test]
    fn max_area_picks_heaviest() {
        let p = sample();
        let pick = SelectionStrategy::MaxArea.pick(&p, ids(&p));
        assert_eq!(pick, Some(BufferId::new(2)));
    }

    #[test]
    fn ties_break_toward_lower_id() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 5))
            .buffer(Buffer::new(4, 6, 5))
            .build()
            .unwrap();
        let pick = SelectionStrategy::MaxSize.pick(&p, ids(&p));
        assert_eq!(pick, Some(BufferId::new(0)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let p = sample();
        assert_eq!(
            SelectionStrategy::MaxArea.pick(&p, std::iter::empty()),
            None
        );
    }

    #[test]
    fn telamalloc_order_matches_paper() {
        assert_eq!(
            SelectionStrategy::TELAMALLOC_ORDER,
            [
                SelectionStrategy::MaxLifetime,
                SelectionStrategy::MaxSize,
                SelectionStrategy::MaxArea
            ]
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(SelectionStrategy::MaxLifetime.to_string(), "max-lifetime");
        assert_eq!(
            SelectionStrategy::LowestPosition.to_string(),
            "lowest-position"
        );
    }
}
