//! Shared lowest-fit placement machinery for the greedy baselines.
//!
//! All non-backtracking heuristics in this crate place blocks one at a
//! time at the lowest feasible address among the blocks already placed
//! (gap-aware, alignment-aware). This module centralizes that machinery
//! so each baseline only supplies a *placement order*.

use tela_model::{Address, BufferId, Problem, Solution};

use crate::HeuristicResult;

/// Incremental lowest-fit placement state over one problem.
///
/// # Example
///
/// ```
/// use tela_heuristics::Placer;
/// use tela_model::{examples, BufferId};
///
/// let problem = examples::tiny();
/// let mut placer = Placer::new(&problem);
/// assert_eq!(placer.place(BufferId::new(0)), Some(0));
/// assert_eq!(placer.place(BufferId::new(1)), Some(8)); // overlaps buffer 0
/// assert_eq!(placer.peak(), 16);
/// ```
#[derive(Debug)]
pub struct Placer<'p> {
    problem: &'p Problem,
    neighbors: Vec<Vec<u32>>,
    addresses: Vec<Address>,
    placed: Vec<bool>,
    peak: Address,
}

impl<'p> Placer<'p> {
    /// Creates an empty placement state for `problem`.
    pub fn new(problem: &'p Problem) -> Self {
        let mut neighbors = vec![Vec::new(); problem.len()];
        for (a, b) in problem.overlapping_pairs() {
            neighbors[a.index()].push(b.index() as u32);
            neighbors[b.index()].push(a.index() as u32);
        }
        Placer {
            problem,
            neighbors,
            addresses: vec![0; problem.len()],
            placed: vec![false; problem.len()],
            peak: 0,
        }
    }

    /// The lowest feasible aligned address for `id` among already-placed
    /// overlapping blocks, without committing it. `None` means the sweep
    /// overflowed the address space — the block cannot be placed at all
    /// (only reachable with near-`u64::MAX` sizes or alignments).
    pub fn lowest_fit(&self, id: BufferId) -> Option<Address> {
        let b = self.problem.buffer(id);
        let mut occupied: Vec<(Address, Address)> = self.neighbors[id.index()]
            .iter()
            .filter(|&&n| self.placed[n as usize])
            .map(|&n| {
                let nb = &self.problem.buffers()[n as usize];
                (
                    self.addresses[n as usize],
                    self.addresses[n as usize].saturating_add(nb.size()),
                )
            })
            .collect();
        occupied.sort_unstable();
        let mut addr: Address = 0;
        for &(s, e) in &occupied {
            if s >= addr.checked_add(b.size())? {
                break;
            }
            if e > addr {
                addr = b.align_up(e)?;
            }
        }
        addr.checked_add(b.size())?;
        Some(addr)
    }

    /// Places `id` at its lowest fit and returns the address, or `None`
    /// (committing nothing) when the sweep overflowed the address space.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already placed.
    pub fn place(&mut self, id: BufferId) -> Option<Address> {
        assert!(!self.placed[id.index()], "buffer {id} is already placed");
        let addr = self.lowest_fit(id)?;
        self.addresses[id.index()] = addr;
        self.placed[id.index()] = true;
        self.peak = self.peak.max(addr + self.problem.buffer(id).size());
        Some(addr)
    }

    /// Returns true if `id` has been placed.
    pub fn is_placed(&self, id: BufferId) -> bool {
        self.placed[id.index()]
    }

    /// Highest address used so far.
    pub fn peak(&self) -> Address {
        self.peak
    }

    /// Finalizes into a [`HeuristicResult`] once every block is placed.
    ///
    /// # Panics
    ///
    /// Panics if some block is unplaced.
    pub fn finish(self) -> HeuristicResult {
        assert!(self.placed.iter().all(|&p| p), "all blocks must be placed");
        let solution = Solution::new(self.addresses);
        debug_assert!(
            self.problem
                .with_capacity(u64::MAX)
                .is_ok_and(|p| solution.validate(&p).is_ok()),
            "placer produced an overlapping packing"
        );
        HeuristicResult {
            solution: (self.peak <= self.problem.capacity()).then_some(solution),
            peak: self.peak,
        }
    }
}

/// Runs lowest-fit placement in the given order. An address-space
/// overflow mid-sweep aborts to a "no solution" result instead of
/// panicking.
pub fn place_in_order(problem: &Problem, order: &[BufferId]) -> HeuristicResult {
    let mut placer = Placer::new(problem);
    for &id in order {
        if placer.place(id).is_none() {
            return HeuristicResult {
                solution: None,
                peak: Address::MAX,
            };
        }
    }
    placer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn fills_gaps_under_overhangs() {
        // Tall block, then a short one, then a block that fits in the
        // hole underneath the tall block's overhang.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 10)) // [0, 10)
            .buffer(Buffer::new(4, 8, 2)) // [0, 2) after block 0 dies
            .buffer(Buffer::new(5, 7, 3)) // fits at [2, 5)
            .build()
            .unwrap();
        let r = place_in_order(&p, &[BufferId::new(0), BufferId::new(1), BufferId::new(2)]);
        let s = r.solution.unwrap();
        assert_eq!(s.addresses(), &[0, 0, 2]);
    }

    #[test]
    fn respects_alignment() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 10))
            .buffer(Buffer::new(0, 2, 8).with_align(32))
            .build()
            .unwrap();
        let r = place_in_order(&p, &[BufferId::new(0), BufferId::new(1)]);
        assert_eq!(r.solution.unwrap().addresses(), &[0, 32]);
    }

    #[test]
    fn lowest_fit_is_idempotent_until_place() {
        let p = examples::tiny();
        let mut placer = Placer::new(&p);
        let id = BufferId::new(0);
        assert_eq!(placer.lowest_fit(id), placer.lowest_fit(id));
        let addr = placer.place(id);
        assert_eq!(addr, Some(0));
        assert!(placer.is_placed(id));
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let p = examples::tiny();
        let mut placer = Placer::new(&p);
        placer.place(BufferId::new(0));
        placer.place(BufferId::new(0));
    }

    #[test]
    #[should_panic(expected = "all blocks")]
    fn finish_requires_completeness() {
        let p = examples::tiny();
        let placer = Placer::new(&p);
        let _ = placer.finish();
    }

    #[test]
    fn peak_tracks_highest_top() {
        let p = examples::tiny();
        let order: Vec<BufferId> = p.iter().map(|(id, _)| id).collect();
        let r = place_in_order(&p, &order);
        assert_eq!(r.peak, 16);
    }
}
