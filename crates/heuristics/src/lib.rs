//! Heuristic baseline allocators for the TelaMalloc reproduction.
//!
//! Three families of baselines from the paper:
//!
//! - [`bfc`] — a best-fit-with-coalescing allocator in the style of
//!   TensorFlow's BFC allocator (§3.1): it processes allocation and
//!   deallocation events in time order and is *timing-unaware* — it never
//!   looks at a buffer's end time when choosing its address.
//! - [`greedy`] — the production-style greedy heuristic (§3.1, Figure 4):
//!   buffers ordered by contention (ties broken by alignment,
//!   `size × lifetime²`, then lifetime) and placed bottom-up on a
//!   skyline, like blocks in a game of Tetris.
//! - [`SelectionStrategy`] — the block-selection orderings compared in
//!   the paper's Figure 14 (max size [Lee & Pisarchyk], max area, max
//!   lifetime, best-fit/lowest-position [Sekiyama et al.]); the
//!   `telamalloc` crate plugs these into its search for the ablation.
//!
//! # Example
//!
//! ```
//! use tela_heuristics::greedy;
//! use tela_model::examples;
//!
//! let problem = examples::tiny();
//! let result = greedy::solve(&problem);
//! let solution = result.solution.expect("tiny is greedy-solvable");
//! assert!(solution.validate(&problem).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bfc;
pub mod greedy;
pub mod ordered;
pub mod perturb;
mod placer;
mod skyline;
mod strategy;

pub use placer::{place_in_order, Placer};
pub use skyline::Skyline;
pub use strategy::SelectionStrategy;

use tela_model::{Address, Solution};

/// Result of running a (non-backtracking) heuristic allocator.
///
/// Heuristics are run with a conceptually unbounded memory and report the
/// peak address they reached; `solution` is `Some` only when the peak
/// fits within the problem's capacity. This mirrors how the paper
/// evaluates heuristics both as allocators (pass/fail at a capacity) and
/// as packers (minimum memory they would need, Table 2 / Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeuristicResult {
    /// The packing, if it fits within the problem's capacity.
    pub solution: Option<Solution>,
    /// Highest address the heuristic's packing reached (its required
    /// memory), regardless of the capacity.
    pub peak: Address,
}
