//! The production-style greedy heuristic (paper §3.1, Figure 4).
//!
//! Buffers are considered in order of decreasing *contention* (the
//! maximum total live memory over the buffer's live range); ties are
//! broken by alignment, then `size × lifetime²`, then lifetime. Each
//! buffer is placed at the lowest gap where it fits among the buffers
//! placed so far — bottom-up, "like blocks in a game of Tetris",
//! including the per-row gap filling of the paper's Figure 4. There is
//! no backtracking: once a block lands, it stays, which is why the
//! heuristic is fast but cannot solve the most complex cases.

use tela_model::{BufferId, Problem};

use crate::placer::place_in_order;
use crate::HeuristicResult;

/// Runs the greedy contention-ordered skyline heuristic on `problem`.
///
/// # Example
///
/// ```
/// use tela_heuristics::greedy;
/// use tela_model::examples;
///
/// let problem = examples::tiny();
/// let result = greedy::solve(&problem);
/// assert!(result.solution.is_some());
/// assert_eq!(result.peak, 16);
/// ```
pub fn solve(problem: &Problem) -> HeuristicResult {
    solve_traced(problem, &tela_trace::Tracer::disabled())
}

/// [`solve`] with a [`Tracer`](tela_trace::Tracer) attached: the run is
/// wrapped in a `heuristic.greedy` span recording the outcome and peak,
/// and counted under `heuristic.greedy.runs`.
pub fn solve_traced(problem: &Problem, tracer: &tela_trace::Tracer) -> HeuristicResult {
    let span = if tracer.enabled() {
        tracer.begin(
            "heuristic",
            "greedy",
            vec![("buffers".into(), problem.len().into())],
        )
    } else {
        tela_trace::SpanId::NULL
    };
    // Fail fast: when the static audit proves that some time step demands
    // more memory than exists, no placement order can succeed — skip the
    // skyline work and report the true peak demand (a lower bound every
    // packing must reach, and here already over capacity).
    let result = if tela_audit::passes::contention_bound(problem).is_some() {
        HeuristicResult {
            solution: None,
            peak: problem.max_contention(),
        }
    } else {
        place_in_order(problem, &placement_order(problem))
    };
    if tracer.enabled() {
        tracer.count("heuristic.greedy.runs", 1);
        tracer.end(
            span,
            "heuristic",
            "greedy",
            vec![
                ("placed".into(), result.solution.is_some().into()),
                ("peak".into(), result.peak.into()),
            ],
        );
    }
    result
}

/// The heuristic's placement order: decreasing contention, ties broken by
/// alignment, `size × lifetime²`, then lifetime (paper §3.1), and finally
/// buffer id for determinism.
pub fn placement_order(problem: &Problem) -> Vec<BufferId> {
    let contention = problem.contention();
    let buffer_contention: Vec<u64> = problem
        .buffers()
        .iter()
        .map(|b| {
            (b.start()..b.end())
                .map(|t| contention.at(t))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut order: Vec<BufferId> = problem.iter().map(|(id, _)| id).collect();
    order.sort_by_key(|&id| {
        let b = problem.buffer(id);
        (
            std::cmp::Reverse(buffer_contention[id.index()]),
            std::cmp::Reverse(b.align()),
            std::cmp::Reverse(u128::from(b.size()) * u128::from(b.lifetime()).pow(2)),
            std::cmp::Reverse(b.lifetime()),
            id.index(),
        )
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn solves_simple_chain() {
        let p = examples::tiny();
        let r = solve(&p);
        assert_eq!(r.peak, 16);
        assert!(r.solution.unwrap().validate(&p).is_ok());
    }

    #[test]
    fn ordering_prefers_contention() {
        // One buffer lives through a high-contention phase, another only
        // through a quiet one; the first must be placed first.
        let p = Problem::builder(100)
            .buffer(Buffer::new(10, 12, 1)) // quiet
            .buffer(Buffer::new(0, 2, 10)) // contended (with the next two)
            .buffer(Buffer::new(0, 2, 10))
            .buffer(Buffer::new(0, 2, 10))
            .build()
            .unwrap();
        let order = placement_order(&p);
        assert_eq!(order.last().unwrap().index(), 0);
    }

    #[test]
    fn tie_break_prefers_alignment_then_weight() {
        // Same contention; the 32-aligned block goes first, then the
        // larger size×lifetime² block.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 4)) // area weight 4*4 = 16
            .buffer(Buffer::new(0, 2, 4).with_align(32))
            .buffer(Buffer::new(0, 4, 4)) // weight 4*16 = 64, but higher contention? no: lives through both slots
            .build()
            .unwrap();
        // Contentions: t0-1: 12, t2-3: 4. Buffer 2 (0,4) sees 12 as well.
        let order = placement_order(&p);
        assert_eq!(order[0].index(), 1, "aligned block first");
        assert_eq!(order[1].index(), 2, "heavier block second");
        assert_eq!(order[2].index(), 0);
    }

    #[test]
    fn greedy_beats_bfc_on_lifetime_aware_case() {
        // The same instance where BFC wastes memory: greedy places the
        // long-lived blocks first and stays at the contention bound.
        let p = Problem::builder(1000)
            .buffer(Buffer::new(0, 10, 10))
            .buffer(Buffer::new(0, 2, 10))
            .buffer(Buffer::new(1, 10, 10))
            .buffer(Buffer::new(2, 10, 10))
            .build()
            .unwrap();
        let greedy_peak = solve(&p).peak;
        let bfc_peak = crate::bfc::solve(&p).peak;
        assert!(
            greedy_peak <= bfc_peak,
            "greedy {greedy_peak} vs bfc {bfc_peak}"
        );
    }

    #[test]
    fn failure_reported_at_tight_capacity() {
        // Figure 1 requires under-the-overhang placement, which a skyline
        // heuristic cannot do; it must either fail or find a valid
        // packing.
        let p = examples::figure1();
        let r = solve(&p);
        match &r.solution {
            Some(s) => assert!(s.validate(&p).is_ok()),
            None => assert!(r.peak > p.capacity()),
        }
    }

    #[test]
    fn peak_is_at_least_contention() {
        let p = examples::figure1();
        assert!(solve(&p).peak >= p.max_contention());
    }

    #[test]
    fn contention_overload_fails_fast_with_honest_peak() {
        // Three fully-overlapping size-3 buffers in 8 units of memory:
        // the audit's contention pass rejects the instance before any
        // placement, and the reported peak is the true lower bound.
        let p = examples::infeasible();
        let r = solve(&p);
        assert!(r.solution.is_none());
        assert_eq!(r.peak, p.max_contention());
        assert!(r.peak > p.capacity());
    }

    #[test]
    fn empty_problem() {
        let p = Problem::builder(10).build().unwrap();
        let r = solve(&p);
        assert_eq!(r.peak, 0);
        assert!(r.solution.unwrap().is_empty());
    }

    #[test]
    fn alignment_respected_in_packing() {
        let p = examples::aligned();
        let r = solve(&p);
        // Whether or not it fits the capacity, the raw packing must align.
        if let Some(s) = &r.solution {
            for (id, b) in p.iter() {
                assert_eq!(s.address(id) % b.align(), 0);
            }
        }
    }
}
