//! A best-fit-with-coalescing allocator in the style of TensorFlow's BFC
//! allocator (paper §3.1, Figure 3).
//!
//! The allocator replays the problem as a stream of allocation events in
//! start-time order (frees happen when live ranges end) and services each
//! allocation with *best fit* over the current free list: the smallest
//! free chunk that fits, lowest address on ties. It is timing-unaware —
//! the choice never considers when the buffer will die — which is exactly
//! why it needs substantially more memory than live-range-aware
//! approaches on tight inputs.

use tela_model::{Address, BufferId, Problem, Solution};

use crate::HeuristicResult;

/// Runs the BFC-style allocator on `problem`.
///
/// The packing is computed against an unbounded memory and reported via
/// [`HeuristicResult`]: `solution` is `Some` iff the peak fits the
/// problem's capacity.
///
/// # Example
///
/// ```
/// use tela_heuristics::bfc;
/// use tela_model::examples;
///
/// let problem = examples::tiny();
/// let result = bfc::solve(&problem);
/// assert!(result.peak >= problem.max_contention());
/// ```
pub fn solve(problem: &Problem) -> HeuristicResult {
    let mut free = FreeList::new();
    let mut addresses = vec![0u64; problem.len()];
    let mut peak = 0u64;

    // Events: allocations at start time (after frees at the same time —
    // a buffer ending at t and one starting at t can share space).
    let mut starts: Vec<BufferId> = problem.iter().map(|(id, _)| id).collect();
    starts.sort_by_key(|&id| (problem.buffer(id).start(), id.index()));
    let mut ends: Vec<BufferId> = starts.clone();
    ends.sort_by_key(|&id| (problem.buffer(id).end(), id.index()));

    let mut next_end = 0usize;
    for id in starts {
        let b = problem.buffer(id);
        // Release everything that died at or before this start.
        while next_end < ends.len() && problem.buffer(ends[next_end]).end() <= b.start() {
            let dead = ends[next_end];
            let dbuf = problem.buffer(dead);
            free.release(addresses[dead.index()], dbuf.size());
            next_end += 1;
        }
        let addr = free.best_fit(b.size(), b.align());
        addresses[id.index()] = addr;
        peak = peak.max(addr + b.size());
    }

    let solution = Solution::new(addresses);
    debug_assert!(
        unbounded(problem).is_some_and(|p| solution.validate(&p).is_ok()),
        "BFC produced an overlapping packing"
    );
    HeuristicResult {
        solution: (peak <= problem.capacity()).then_some(solution),
        peak,
    }
}

// Raising the capacity cannot fail in practice; `None` would only make
// the debug assertion fire, never panic a release solve.
fn unbounded(problem: &Problem) -> Option<Problem> {
    problem.with_capacity(u64::MAX).ok()
}

/// Address-ordered free list over an unbounded memory `[0, ∞)`.
///
/// Chunks are kept sorted and coalesced; the tail of memory (from the
/// high-water mark up) is implicitly free.
#[derive(Debug)]
struct FreeList {
    /// Sorted, disjoint, coalesced free chunks `[start, end)` below the
    /// high-water mark.
    chunks: Vec<(Address, Address)>,
    /// Everything at or above this address has never been allocated.
    high_water: Address,
}

impl FreeList {
    fn new() -> Self {
        FreeList {
            chunks: Vec::new(),
            high_water: 0,
        }
    }

    /// Best-fit allocation: smallest chunk that fits (after alignment),
    /// lowest address on ties; falls back to extending the high-water
    /// mark.
    fn best_fit(&mut self, size: u64, align: u64) -> Address {
        let mut best: Option<(u64, usize, Address)> = None; // (waste, index, addr)
        for (i, &(start, end)) in self.chunks.iter().enumerate() {
            let addr = align_up(start, align);
            if addr + size <= end {
                let chunk_len = end - start;
                let candidate = (chunk_len - size, i, addr);
                if best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
            }
        }
        match best {
            Some((_, i, addr)) => {
                let (start, end) = self.chunks.remove(i);
                // Reinsert the unused head and tail fragments.
                if addr > start {
                    self.insert(start, addr);
                }
                if addr + size < end {
                    self.insert(addr + size, end);
                }
                addr
            }
            None => {
                let addr = align_up(self.high_water, align);
                if addr > self.high_water {
                    self.insert(self.high_water, addr);
                }
                self.high_water = addr + size;
                addr
            }
        }
    }

    /// Returns a chunk to the free list, coalescing with neighbours.
    fn release(&mut self, addr: Address, size: u64) {
        self.insert(addr, addr + size);
    }

    fn insert(&mut self, start: Address, end: Address) {
        let pos = self.chunks.partition_point(|&(s, _)| s < start);
        self.chunks.insert(pos, (start, end));
        // Coalesce around the inserted chunk.
        let mut i = pos.saturating_sub(1);
        while i + 1 < self.chunks.len() {
            if self.chunks[i].1 >= self.chunks[i + 1].0 {
                self.chunks[i].1 = self.chunks[i].1.max(self.chunks[i + 1].1);
                self.chunks.remove(i + 1);
            } else if i < pos {
                i += 1;
            } else {
                break;
            }
        }
    }
}

fn align_up(addr: Address, align: u64) -> Address {
    if align <= 1 {
        addr
    } else {
        addr.div_ceil(align) * align
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn sequential_buffers_reuse_space() {
        // Non-overlapping buffers of equal size all land at address 0.
        let p = Problem::builder(100)
            .buffers((0..4).map(|i| Buffer::new(i * 2, i * 2 + 2, 10)))
            .build()
            .unwrap();
        let r = solve(&p);
        assert_eq!(r.peak, 10);
        let s = r.solution.unwrap();
        assert!(s.addresses().iter().all(|&a| a == 0));
    }

    #[test]
    fn overlapping_buffers_stack() {
        let p = Problem::builder(100)
            .buffers((0..3).map(|_| Buffer::new(0, 4, 10)))
            .build()
            .unwrap();
        let r = solve(&p);
        assert_eq!(r.peak, 30);
        assert!(r.solution.unwrap().validate(&p).is_ok());
    }

    #[test]
    fn best_fit_prefers_tightest_hole() {
        // Create holes of size 4 and 8, then allocate size 4: it must go
        // into the size-4 hole.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 4)) // dies, leaves hole [0, 4)
            .buffer(Buffer::new(0, 10, 2)) // separator at [4, 6)
            .buffer(Buffer::new(0, 2, 8)) // dies, leaves hole [6, 14)
            .buffer(Buffer::new(0, 10, 2)) // separator at [14, 16)
            .buffer(Buffer::new(4, 6, 4)) // allocates into hole [0, 4)
            .build()
            .unwrap();
        let r = solve(&p);
        let s = r.solution.unwrap();
        assert_eq!(s.addresses()[4], 0);
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn timing_unaware_packing_wastes_memory() {
        // A short-lived block allocated between two long-lived ones pins
        // the address space: BFC needs more memory than the contention
        // bound.
        let p = Problem::builder(1000)
            .buffer(Buffer::new(0, 10, 10)) // long
            .buffer(Buffer::new(0, 2, 10)) // short, stacked on top
            .buffer(Buffer::new(1, 10, 10)) // long, lands above the short one
            .buffer(Buffer::new(2, 10, 10)) // reuses the short one's slot
            .build()
            .unwrap();
        let r = solve(&p);
        assert!(r.peak >= p.max_contention());
        assert!(r.solution.unwrap().validate(&p).is_ok());
    }

    #[test]
    fn failure_reported_when_peak_exceeds_capacity() {
        // Figure 1 needs careful placement; BFC typically cannot do it in
        // exactly 4 units. Whatever it produces must be either None or a
        // valid solution.
        let p = examples::figure1();
        let r = solve(&p);
        if let Some(s) = &r.solution {
            assert!(s.validate(&p).is_ok());
        } else {
            assert!(r.peak > p.capacity());
        }
    }

    #[test]
    fn alignment_respected() {
        let p = Problem::builder(1000)
            .buffer(Buffer::new(0, 4, 10))
            .buffer(Buffer::new(0, 4, 8).with_align(32))
            .build()
            .unwrap();
        let r = solve(&p);
        let s = r.solution.unwrap();
        assert_eq!(s.addresses()[1] % 32, 0);
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn empty_problem() {
        let p = Problem::builder(10).build().unwrap();
        let r = solve(&p);
        assert_eq!(r.peak, 0);
        assert!(r.solution.unwrap().is_empty());
    }

    #[test]
    fn free_list_coalesces() {
        let mut fl = FreeList::new();
        let a = fl.best_fit(4, 1);
        let b = fl.best_fit(4, 1);
        let c = fl.best_fit(4, 1);
        assert_eq!((a, b, c), (0, 4, 8));
        fl.release(a, 4);
        fl.release(c, 4);
        fl.release(b, 4); // coalesces [0,12) into one chunk
        assert_eq!(fl.chunks, vec![(0, 12)]);
        assert_eq!(fl.best_fit(12, 1), 0);
    }
}
