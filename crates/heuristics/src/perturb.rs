//! Seeded perturbation of block-selection orderings.
//!
//! The adaptive portfolio restarts clearly-losing variants with a
//! *perturbed* variable ordering (the randomized-descent idea from
//! Telamon's local selection): the strategy's ranking keys are jittered
//! by a deterministic hash of `(seed, buffer id)`, so nearby restarts
//! explore genuinely different regions of the search tree while every
//! `(seed, problem)` pair stays perfectly reproducible.
//!
//! `seed == 0` is the identity: keys pass through untouched and the
//! search behaves bit-for-bit like the unperturbed baseline. That makes
//! zero the "no perturbation" sentinel used throughout the workspace.

/// SplitMix64: a fast, well-mixed 64-bit hash/PRNG step (Steele et al.).
/// Used as the deterministic noise source for ordering perturbation and
/// restart-seed derivation.
#[must_use]
// tela-lint: hot-path
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Jitters a selection key by up to ±12.5% of its magnitude, seeded by
/// `(seed, id)`. With `seed == 0` the key is returned unchanged.
///
/// The swing is proportional (`key >> 3` scaled by a signed 16-bit hash
/// fraction), so perturbation reorders blocks whose keys are *close* —
/// plausible alternative orderings — without ever promoting a tiny block
/// over a dominant one. Saturates instead of wrapping near the type
/// bounds.
#[must_use]
// tela-lint: hot-path
pub fn jitter_key(key: u128, id: u64, seed: u64) -> u128 {
    if seed == 0 {
        return key;
    }
    let h = splitmix64(seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407));
    let unit = (key >> 3) as i128;
    let fraction = i128::from((h & 0xFFFF) as i64 - 0x8000);
    let swing = unit * fraction / 0x8000;
    key.checked_add_signed(swing).unwrap_or(key)
}

/// A deterministic tiebreak token for `(seed, id)`: equal keys are
/// reordered per seed instead of always falling back to id order. With
/// `seed == 0` callers should keep the plain id tiebreak (this function
/// is only meaningful for nonzero seeds).
#[must_use]
// tela-lint: hot-path
pub fn tiebreak(id: u64, seed: u64) -> u64 {
    splitmix64(seed.rotate_left(17) ^ id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_identity() {
        for key in [0u128, 1, 7, 1 << 40, u128::MAX] {
            assert_eq!(jitter_key(key, 3, 0), key);
        }
    }

    #[test]
    fn same_seed_same_jitter() {
        for id in 0..64u64 {
            assert_eq!(jitter_key(1000, id, 42), jitter_key(1000, id, 42));
        }
    }

    #[test]
    fn different_seeds_reorder_close_keys() {
        // Two seeds must disagree on the relative order of at least one
        // pair of near-equal keys.
        let keys: Vec<u128> = (0..32).map(|i| 1_000_000 + i).collect();
        let order = |seed: u64| {
            let mut ids: Vec<u64> = (0..keys.len() as u64).collect();
            ids.sort_by_key(|&i| std::cmp::Reverse(jitter_key(keys[i as usize], i, seed)));
            ids
        };
        assert_ne!(order(1), order(2));
    }

    #[test]
    fn jitter_is_bounded() {
        let key = 1u128 << 20;
        for seed in 1..100u64 {
            let j = jitter_key(key, seed, seed);
            let lo = key - (key >> 3);
            let hi = key + (key >> 3);
            assert!(j >= lo && j <= hi, "seed {seed}: {j} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_keys_never_underflow() {
        for key in 0..16u128 {
            for seed in 1..8u64 {
                let _ = jitter_key(key, 1, seed);
            }
        }
    }

    #[test]
    fn tiebreak_varies_with_seed_and_id() {
        assert_ne!(tiebreak(0, 1), tiebreak(1, 1));
        assert_ne!(tiebreak(0, 1), tiebreak(0, 2));
        assert_eq!(tiebreak(5, 9), tiebreak(5, 9));
    }
}
