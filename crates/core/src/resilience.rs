//! The escalation ladder: staged retries with budget slicing, spill
//! hooks, and best-effort degradation (paper §1, §2.3, §6.5).
//!
//! The paper's production chain never aborts a compilation because one
//! solver stage failed: the fast heuristic runs first, the full search
//! next, and when the instance genuinely does not fit, the framework
//! spills a tensor to DRAM and tries again. [`EscalationLadder`]
//! encodes that chain as explicit stages, each running under a slice of
//! the caller's [`Budget`]:
//!
//! ```text
//!   greedy heuristic ──solved──────────────────────────▶ Solved
//!        │ failed
//!        ▼
//!   portfolio race  ──solved/infeasible(no spill)─────▶ Solved / Infeasible
//!        │ budget exhausted or infeasible
//!        ▼
//!   spill round 1..N: evict → rebuild Problem → re-solve
//!        │ rounds capped / spill impossible / out of time
//!        ▼
//!   BestEffort { validated partial, stage, steps, first conflict }
//! ```
//!
//! Every exit is a well-formed [`SolveOutcome`]: the ladder never
//! panics (workers are isolated) and never returns an unvalidated
//! placement.

use std::time::{Duration, Instant};

use tela_audit::Certificate;
use tela_model::{
    BestEffort, Budget, BufferId, PartialSolution, Problem, ResilienceStage, SolveOutcome,
    SolveStats,
};

use crate::backtrack::PlacedDecision;
use crate::config::TelaConfig;
use crate::portfolio::{catch_panics, solve_portfolio};

/// Tuning knobs for the [`EscalationLadder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderConfig {
    /// Try the greedy heuristic before each portfolio stage (the paper's
    /// fast path; it costs microseconds and wins on most production
    /// instances).
    pub greedy_first: bool,
    /// Percentage of the remaining step budget granted to the first
    /// portfolio attempt; the rest is held back for spill retries.
    /// Ignored (the first attempt gets everything) when
    /// `max_spill_rounds` is zero.
    pub first_attempt_percent: u32,
    /// Maximum number of spill-and-retry rounds after the first attempt.
    pub max_spill_rounds: u32,
    /// Sleep between stages (a production system would use this to
    /// yield the core; tests keep it at zero).
    pub backoff: Duration,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            greedy_first: true,
            first_attempt_percent: 60,
            max_spill_rounds: 8,
            backoff: Duration::ZERO,
        }
    }
}

/// Supplies the next, smaller problem when a stage fails: each call
/// evicts something (e.g. spills a tensor to DRAM, as
/// `tela-pixel`'s `SpillReport` records) and rebuilds the [`Problem`].
pub trait SpillHook {
    /// Produces the problem for spill round `round` (1-based), or
    /// `None` when nothing more can be evicted.
    fn spill(&mut self, round: u32) -> Option<Problem>;
}

/// A [`SpillHook`] that never spills: the ladder degrades straight to
/// [`SolveOutcome::BestEffort`] when the portfolio fails.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSpill;

impl SpillHook for NoSpill {
    fn spill(&mut self, _round: u32) -> Option<Problem> {
        None
    }
}

/// What one ladder stage did.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Which stage ran.
    pub stage: ResilienceStage,
    /// The stage's outcome (the heuristic stage only appears here when
    /// it solved the instance).
    pub outcome: SolveOutcome,
    /// The stage's own search statistics.
    pub stats: SolveStats,
}

/// Result of running the escalation ladder.
#[derive(Debug, Clone)]
pub struct LadderResult {
    /// Always one of `Solved`, `Infeasible`, or `BestEffort` — the
    /// ladder converts `GaveUp`/`BudgetExceeded` into a diagnosed
    /// best-effort answer.
    pub outcome: SolveOutcome,
    /// The problem the outcome refers to: the input, unless spill
    /// rounds rebuilt it (then the final spilled problem).
    pub problem: Problem,
    /// How many spill rounds ran.
    pub spill_rounds: u32,
    /// The stage that produced the final outcome.
    pub stage: ResilienceStage,
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
    /// Aggregate statistics across every stage.
    pub stats: SolveStats,
    /// The infeasibility witness, when the outcome is a proven
    /// `Infeasible`.
    pub certificate: Option<Certificate>,
}

/// The staged-retry driver: greedy → portfolio → spill-and-retry →
/// best-effort (see the module docs for the stage diagram).
///
/// # Example
///
/// ```
/// use telamalloc::{EscalationLadder, TelaConfig};
/// use tela_model::{examples, Budget};
///
/// let ladder = EscalationLadder::new(TelaConfig::default());
/// let result = ladder.solve(&examples::figure1(), &Budget::steps(500_000));
/// assert!(result.outcome.is_solved());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EscalationLadder {
    config: TelaConfig,
}

impl EscalationLadder {
    /// Creates a ladder running `config` at every search stage.
    pub fn new(config: TelaConfig) -> Self {
        EscalationLadder { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TelaConfig {
        &self.config
    }

    /// Runs the ladder without a spill hook: greedy, then the
    /// portfolio, then straight to best-effort degradation.
    pub fn solve(&self, problem: &Problem, budget: &Budget) -> LadderResult {
        self.solve_with_spill(problem.clone(), budget, &mut NoSpill)
    }

    /// Runs the full ladder: after a failed attempt, `hook` may supply
    /// a smaller (spilled) problem for the next round, up to
    /// [`LadderConfig::max_spill_rounds`] times.
    ///
    /// The returned `stats.elapsed` is the ladder's own wall-clock time
    /// across all stages, stamped on every exit path (heuristic win,
    /// portfolio win, definitive infeasibility, best-effort).
    pub fn solve_with_spill(
        &self,
        problem: Problem,
        budget: &Budget,
        hook: &mut dyn SpillHook,
    ) -> LadderResult {
        // tela-lint: allow(deterministic-clock, reason = "stats-only wall stamping of elapsed; never branches the search")
        let start = Instant::now();
        let tracer = &self.config.tracer;
        let span = if tracer.enabled() {
            tracer.count("ladder.runs", 1);
            tracer.begin(
                "ladder",
                "solve",
                vec![("buffers".into(), problem.len().into())],
            )
        } else {
            tela_trace::SpanId::NULL
        };
        let mut result = self.run_ladder(problem, budget, hook);
        result.stats.elapsed = start.elapsed();
        if tracer.enabled() {
            tracer.set_gauge("ladder.spill_rounds", i64::from(result.spill_rounds));
            tracer.end(
                span,
                "ladder",
                "solve",
                vec![
                    ("outcome".into(), result.outcome.label().into()),
                    ("spill_rounds".into(), u64::from(result.spill_rounds).into()),
                ],
            );
        }
        result
    }

    fn run_ladder(
        &self,
        problem: Problem,
        budget: &Budget,
        hook: &mut dyn SpillHook,
    ) -> LadderResult {
        let tracer = &self.config.tracer;
        let lc = self.config.ladder.clone();
        let mut current = problem;
        let mut agg = SolveStats::default();
        let mut stages: Vec<StageReport> = Vec::new();
        let mut round: u32 = 0;
        // Assigned on every loop iteration before any `break` can run.
        let mut last_partial: Vec<PlacedDecision>;
        let mut last_conflict: Vec<BufferId>;
        let mut deepest: ResilienceStage;

        loop {
            let stage_id = if round == 0 {
                ResilienceStage::Portfolio
            } else {
                ResilienceStage::SpillRetry { round }
            };

            // Fast path: the greedy heuristic, isolated like any other
            // worker — a panic in it merely skips to the portfolio.
            if lc.greedy_first {
                let greedy =
                    catch_panics(|| tela_heuristics::greedy::solve_traced(&current, tracer));
                if let Ok(heuristic) = greedy {
                    if let Some(solution) = heuristic.solution {
                        if solution.validate(&current).is_ok() {
                            if tracer.enabled() {
                                tracer.count("ladder.greedy_wins", 1);
                                tracer.instant(
                                    "ladder",
                                    "greedy_solved",
                                    vec![("round".into(), u64::from(round).into())],
                                );
                            }
                            let stage = if round == 0 {
                                ResilienceStage::Heuristic
                            } else {
                                stage_id
                            };
                            stages.push(StageReport {
                                stage,
                                outcome: SolveOutcome::Solved(solution.clone()),
                                stats: SolveStats::default(),
                            });
                            return LadderResult {
                                outcome: SolveOutcome::Solved(solution),
                                problem: current,
                                spill_rounds: round,
                                stage,
                                stages,
                                stats: agg,
                                certificate: None,
                            };
                        }
                    }
                }
            }

            deepest = stage_id;
            let stage_budget = round_budget(budget, &lc, agg.steps, round);
            let race = solve_portfolio(&current, &stage_budget, &self.config);
            agg.absorb(&race.result.stats);
            stages.push(StageReport {
                stage: stage_id,
                outcome: race.result.outcome.clone(),
                stats: race.result.stats,
            });
            if tracer.enabled() {
                tracer.count("ladder.stages", 1);
                tracer.observe("ladder.stage.steps", race.result.stats.steps);
                // Stage durations are real wall time, so they are only
                // recorded under the wall clock — logical traces must
                // stay byte-identical across runs.
                if tracer.clock() == Some(tela_trace::ClockMode::Wall) {
                    tracer.observe(
                        "ladder.stage.elapsed_us",
                        race.result.stats.elapsed.as_micros() as u64,
                    );
                }
                tracer.instant(
                    "ladder",
                    "stage",
                    vec![
                        ("round".into(), u64::from(round).into()),
                        ("outcome".into(), race.result.outcome.label().into()),
                    ],
                );
            }
            let infeasible_here = matches!(race.result.outcome, SolveOutcome::Infeasible);
            if let SolveOutcome::Solved(solution) = race.result.outcome {
                return LadderResult {
                    outcome: SolveOutcome::Solved(solution),
                    problem: current,
                    spill_rounds: round,
                    stage: stage_id,
                    stages,
                    stats: agg,
                    certificate: None,
                };
            }
            // Partials from earlier rounds describe a different
            // (pre-spill) problem, so each round overwrites them.
            last_partial = race.result.partial;
            last_conflict = race.result.first_conflict;

            let out_of_time = budget.deadline_passed() || budget.cancelled();
            if out_of_time || round >= lc.max_spill_rounds {
                break;
            }
            let next = if self.spill_blocked(round + 1) {
                None
            } else {
                hook.spill(round + 1)
            };
            match next {
                Some(spilled) => {
                    if tracer.enabled() {
                        tracer.count("ladder.spills", 1);
                        tracer.instant(
                            "ladder",
                            "spill",
                            vec![
                                ("round".into(), u64::from(round + 1).into()),
                                ("buffers".into(), spilled.len().into()),
                            ],
                        );
                    }
                    if !lc.backoff.is_zero() {
                        std::thread::sleep(lc.backoff);
                    }
                    current = spilled;
                    round += 1;
                }
                None => {
                    // Nothing left to evict. An infeasibility proof for
                    // the *unspilled* problem is a definitive answer;
                    // after spilling it only describes the reduced
                    // problem, so degrade instead.
                    if infeasible_here && round == 0 {
                        return LadderResult {
                            outcome: SolveOutcome::Infeasible,
                            problem: current,
                            spill_rounds: 0,
                            stage: stage_id,
                            stages,
                            stats: agg,
                            certificate: race.result.certificate,
                        };
                    }
                    break;
                }
            }
        }

        // Terminal degradation: package the longest committed prefix as
        // a validated partial solution. Validation failure (e.g. a
        // prefix from a sub-problem the spill hook since rebuilt) drops
        // the prefix rather than returning an unchecked placement.
        let partial =
            PartialSolution::new(last_partial.iter().map(|d| (d.block, d.address)).collect());
        let partial = if partial.validate(&current).is_ok() {
            partial
        } else {
            PartialSolution::empty()
        };
        if tracer.enabled() {
            tracer.count("ladder.degraded", 1);
            tracer.instant(
                "ladder",
                "degraded",
                vec![
                    ("placed".into(), partial.len().into()),
                    ("spill_rounds".into(), u64::from(round).into()),
                ],
            );
        }
        let best = BestEffort {
            partial,
            stage: deepest,
            steps: agg.steps,
            first_conflict: last_conflict,
            spill_rounds: round,
        };
        LadderResult {
            outcome: SolveOutcome::BestEffort(Box::new(best)),
            problem: current,
            spill_rounds: round,
            stage: deepest,
            stages,
            stats: agg,
            certificate: None,
        }
    }

    /// Whether fault injection blocks this spill round (chaos testing
    /// of the "spill failed" path).
    fn spill_blocked(&self, _round: u32) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.config.fault_plan {
            return plan.fail_spill_round == Some(_round);
        }
        false
    }
}

/// The budget slice for one ladder stage.
///
/// Stage slices partition the caller's *remaining* budget along both
/// axes, re-measured at the moment the stage starts:
///
/// - **Steps**: the first attempt gets
///   [`LadderConfig::first_attempt_percent`] of the steps not yet spent
///   (all of them when no spill rounds are configured); each spill
///   round gets an even share of what is left at that point.
/// - **Deadline**: the same fractions applied to the time left until
///   the caller's deadline *as of now*. Slicing from the remaining time
///   rather than static fractions of the original grant means a slow
///   earlier stage (a pathological greedy pass, a long first portfolio
///   attempt) shrinks later slices proportionally instead of handing a
///   later stage a deadline that already expired inside its
///   "reserved" share. A stage slice never extends past the caller's
///   own deadline, and when the caller's deadline has already passed
///   it is handed through unchanged — the stage observes an exhausted
///   budget at its first poll and returns promptly.
///
/// Cancellation flags pass through unchanged.
fn round_budget(budget: &Budget, lc: &LadderConfig, spent: u64, round: u32) -> Budget {
    // tela-lint: allow(deterministic-clock, reason = "re-measuring the remaining deadline is the point of per-stage slicing; step-only budgets never read the clock")
    let now = budget.deadline().map(|_| Instant::now());
    round_budget_at(budget, lc, spent, round, now)
}

/// Deterministic core of [`round_budget`]: `now` is the instant the
/// stage starts (`None` when the budget has no deadline, so no clock is
/// read on the step-only path).
fn round_budget_at(
    budget: &Budget,
    lc: &LadderConfig,
    spent: u64,
    round: u32,
    now: Option<Instant>,
) -> Budget {
    // The stage's share of what remains, as a (numerator, denominator)
    // fraction — shared by the step and deadline axes.
    let share = |remaining: u128| -> u128 {
        if round == 0 {
            if lc.max_spill_rounds == 0 {
                remaining
            } else {
                remaining * u128::from(lc.first_attempt_percent.min(100)) / 100
            }
        } else {
            // Even share over this and all remaining rounds.
            remaining / u128::from(lc.max_spill_rounds - round + 1)
        }
    };

    let mut slice = budget.clone();
    if let Some(total) = budget.max_steps() {
        let remaining = total.saturating_sub(spent).max(1);
        let steps = (share(u128::from(remaining)).max(1)) as u64;
        slice = slice.with_max_steps(steps);
    }
    if let (Some(deadline), Some(now)) = (budget.deadline(), now) {
        let remaining = deadline.saturating_duration_since(now);
        if !remaining.is_zero() {
            let nanos = share(remaining.as_nanos()).min(remaining.as_nanos());
            let stage_deadline = now
                .checked_add(Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64))
                .unwrap_or(deadline)
                .min(deadline);
            slice = slice.with_deadline(stage_deadline);
        }
        // Already expired: hand the caller's deadline through unchanged
        // so the stage terminates at its first budget poll.
    }
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use tela_model::{examples, Buffer};

    fn ladder() -> EscalationLadder {
        EscalationLadder::new(TelaConfig::default())
    }

    #[test]
    fn easy_instance_solved_by_heuristic_stage() {
        let result = ladder().solve(&examples::tiny(), &Budget::steps(100_000));
        assert!(result.outcome.is_solved());
        assert_eq!(result.stage, ResilienceStage::Heuristic);
        assert_eq!(result.spill_rounds, 0);
    }

    #[test]
    fn tight_instance_solved_by_portfolio_stage() {
        let p = examples::figure1();
        let result = ladder().solve(&p, &Budget::steps(500_000));
        let solution = result.outcome.solution().expect("figure1 is solvable");
        assert!(solution.validate(&p).is_ok());
        assert_eq!(result.stage, ResilienceStage::Portfolio);
    }

    #[test]
    fn infeasible_without_spill_is_definitive() {
        let result = ladder().solve(&examples::infeasible(), &Budget::steps(100_000));
        assert_eq!(result.outcome, SolveOutcome::Infeasible);
        assert!(result
            .certificate
            .expect("preflight witness")
            .verify(&result.problem));
    }

    /// A spill hook that removes the last buffer each round, like the
    /// pixel compiler evicting one tensor per spill round.
    struct DropLast {
        buffers: Vec<Buffer>,
        capacity: u64,
    }

    impl SpillHook for DropLast {
        fn spill(&mut self, _round: u32) -> Option<Problem> {
            self.buffers.pop()?;
            Problem::new(self.buffers.clone(), self.capacity).ok()
        }
    }

    #[test]
    fn two_spill_rounds_reach_a_solution() {
        // Six fully-overlapping size-2 buffers in 8 units of memory:
        // contention 12 > 8, and still 10 > 8 after one eviction. Two
        // spill rounds bring it to 8 <= 8, which then solves.
        let buffers: Vec<Buffer> = (0..6).map(|_| Buffer::new(0, 4, 2)).collect();
        let problem = Problem::new(buffers.clone(), 8).unwrap();
        let mut hook = DropLast {
            buffers,
            capacity: 8,
        };
        let result = ladder().solve_with_spill(problem, &Budget::steps(200_000), &mut hook);
        let solution = result.outcome.solution().expect("solvable after 2 spills");
        assert_eq!(result.spill_rounds, 2);
        assert_eq!(result.problem.len(), 4);
        assert!(solution.validate(&result.problem).is_ok());
        // Stage reports track every attempt: the two failed rounds plus
        // the winning one.
        assert!(result.stages.len() >= 3);
    }

    #[test]
    fn budget_starved_instance_degrades_to_best_effort() {
        // Figure 1 defeats the greedy stage, and five steps are nowhere
        // near enough for the search: the ladder must degrade, not
        // abort, and the partial it returns must validate.
        let p = examples::figure1();
        let result = ladder().solve(&p, &Budget::steps(5));
        let best = result
            .outcome
            .best_effort()
            .expect("starved solve degrades");
        assert!(best.partial.validate(&result.problem).is_ok());
        assert!(best.steps > 0, "the search did spend its slice");
        assert_eq!(best.spill_rounds, 0);
        assert_eq!(result.stage, ResilienceStage::Portfolio);
    }

    #[test]
    fn expired_deadline_still_terminates_with_best_effort() {
        // Deterministic fake clock: the deadline is already in the past,
        // so every stage sees an exhausted budget immediately. The
        // ladder must still terminate with a well-formed outcome.
        let p = examples::figure1();
        let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let result = ladder().solve(&p, &budget);
        let best = result.outcome.best_effort().expect("degrades, not aborts");
        assert!(best.partial.validate(&result.problem).is_ok());
    }

    #[test]
    fn round_budget_slices_are_deterministic() {
        let lc = LadderConfig::default();
        let budget = Budget::steps(1000);
        // First attempt: 60% of the full budget.
        assert_eq!(round_budget(&budget, &lc, 0, 0).max_steps(), Some(600));
        // After 600 spent, round 1 shares the remaining 400 over the 8
        // remaining rounds.
        assert_eq!(round_budget(&budget, &lc, 600, 1).max_steps(), Some(50));
        // Slices never reach zero, even when overspent.
        assert_eq!(round_budget(&budget, &lc, 5000, 8).max_steps(), Some(1));
        // No spill rounds: the first attempt gets everything.
        let all_in = LadderConfig {
            max_spill_rounds: 0,
            ..LadderConfig::default()
        };
        assert_eq!(round_budget(&budget, &all_in, 0, 0).max_steps(), Some(1000));
        // Unbounded budgets stay unbounded.
        assert_eq!(
            round_budget(&Budget::unlimited(), &lc, 0, 0).max_steps(),
            None
        );
    }

    #[test]
    fn deadline_carries_into_stage_slices() {
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs(3600);
        let budget = Budget::steps(1000).with_deadline(deadline);
        let slice = round_budget(&budget, &LadderConfig::default(), 0, 0);
        assert!(!slice.deadline_passed_at(t0));
        assert!(slice.deadline_passed_at(deadline));
    }

    #[test]
    fn stage_deadlines_derive_from_remaining_time() {
        // Fake clock throughout: the caller granted 100s total.
        let lc = LadderConfig::default();
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs(100);
        let budget = Budget::unlimited().with_deadline(deadline);

        // First attempt, started immediately: 60% of the 100s remain
        // reserved for it, so its slice expires at t0+60s, not at the
        // caller's deadline.
        let first = round_budget_at(&budget, &lc, 0, 0, Some(t0));
        assert!(!first.deadline_passed_at(t0 + Duration::from_secs(59)));
        assert!(first.deadline_passed_at(t0 + Duration::from_secs(60)));

        // A slow earlier stage ate 90 of the 100 seconds. Round 1's
        // share is measured from the 10s that *remain*: an even share
        // over the 8 remaining rounds (1.25s), not 1/8 of the original
        // 40% holdback computed at t0.
        let late = t0 + Duration::from_secs(90);
        let retry = round_budget_at(&budget, &lc, 0, 1, Some(late));
        assert!(!retry.deadline_passed_at(late + Duration::from_millis(1249)));
        assert!(retry.deadline_passed_at(late + Duration::from_millis(1250)));

        // The final spill round gets everything still on the clock.
        let last = round_budget_at(&budget, &lc, 0, lc.max_spill_rounds, Some(late));
        assert!(!last.deadline_passed_at(deadline - Duration::from_millis(1)));
        assert!(last.deadline_passed_at(deadline));
    }

    #[test]
    fn expired_caller_deadline_passes_through_unchanged() {
        // When the deadline already passed, the stage must see an
        // exhausted budget immediately — not a zero-length slice pinned
        // to some later `now`.
        let lc = LadderConfig::default();
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs(1);
        let budget = Budget::unlimited().with_deadline(deadline);
        let after = t0 + Duration::from_secs(5);
        let slice = round_budget_at(&budget, &lc, 0, 0, Some(after));
        assert!(slice.deadline_passed_at(after));
        assert_eq!(slice.deadline(), Some(deadline));
    }

    #[test]
    fn step_only_budgets_slice_without_reading_the_clock() {
        // `now == None` is the no-deadline path; step slicing is
        // unchanged from the static-fraction behaviour.
        let lc = LadderConfig::default();
        let slice = round_budget_at(&Budget::steps(1000), &lc, 0, 0, None);
        assert_eq!(slice.max_steps(), Some(600));
        assert_eq!(slice.deadline(), None);
    }

    #[test]
    fn stage_slice_never_extends_past_the_caller_deadline() {
        // No spill rounds: the first attempt's share is 100% of the
        // remainder, which must clamp exactly to the caller's deadline.
        let all_in = LadderConfig {
            max_spill_rounds: 0,
            ..LadderConfig::default()
        };
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs(10);
        let budget = Budget::unlimited().with_deadline(deadline);
        let slice = round_budget_at(&budget, &all_in, 0, 0, Some(t0));
        assert!(!slice.deadline_passed_at(deadline - Duration::from_millis(1)));
        assert!(slice.deadline_passed_at(deadline));
    }
}
