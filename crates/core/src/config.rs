use tela_heuristics::SelectionStrategy;
use tela_trace::Tracer;

use crate::adaptive::AdaptiveConfig;
use crate::portfolio::PortfolioVariant;
use crate::resilience::LadderConfig;

/// Tuning knobs for the TelaMalloc search.
///
/// The defaults correspond to the full system described in the paper
/// (§5); individual features can be disabled for ablation studies (the
/// paper's Figure 14 compares block-selection strategies this way).
///
/// # Example
///
/// ```
/// use telamalloc::TelaConfig;
/// use tela_heuristics::SelectionStrategy;
///
/// // Ablation: single max-size selection, no contention grouping.
/// let config = TelaConfig {
///     selection: vec![SelectionStrategy::MaxSize],
///     contention_grouping: false,
///     ..TelaConfig::default()
/// };
/// assert!(config.solver_guided_placement);
/// ```
#[derive(Debug, Clone)]
pub struct TelaConfig {
    /// Block-selection heuristics tried at every step, in order
    /// (§5.1: longest lifetime, largest size, largest area).
    pub selection: Vec<SelectionStrategy>,
    /// Place blocks at the solver's lowest feasible position (§5.2,
    /// Figure 8b). When false, blocks are placed on top of the skyline of
    /// already-placed overlapping blocks (Figure 8a).
    pub solver_guided_placement: bool,
    /// Identify contention phases and place blocks phase by phase (§5.3,
    /// Figure 9).
    pub contention_grouping: bool,
    /// On a major backtrack, jump to the second-to-last conflicting
    /// placement instead of a fixed number of steps (§5.4).
    pub conflict_guided_backtracking: bool,
    /// Steps to rewind on a major backtrack when conflict-guided
    /// backtracking is disabled (the paper's initial implementation used
    /// 1–2).
    pub fixed_backtrack_steps: usize,
    /// Prepend the failing decision point's candidates at the backtrack
    /// target (§5.4).
    pub candidate_prepending: bool,
    /// Maximum number of candidate blocks kept at one decision point;
    /// further candidates are dropped (§5.4).
    pub max_candidates_per_level: usize,
    /// Once more than this many backtracks occur within one subtree, the
    /// search escapes to the shallowest such point (§5.4; the paper uses
    /// a constant around 100).
    pub stuck_subtree_limit: u64,
    /// Solve time-disjoint sub-problems independently (§5.3).
    pub split_independent: bool,
    /// Run the `tela-audit` static preflight before searching: provably
    /// infeasible instances fail immediately with a
    /// [`Certificate`](tela_audit::Certificate) and degenerate instances
    /// are solved without search.
    pub preflight_audit: bool,
    /// Shrink conflict explanations to irreducible sets before deriving
    /// backtrack targets (an extension over the paper; see
    /// `tela_cp::explain`). Costs extra solver probes per major
    /// backtrack.
    pub minimize_conflicts: bool,
    /// OS threads for the portfolio race
    /// ([`solve_portfolio`](crate::solve_portfolio)). `1` (the default)
    /// runs variants sequentially; [`solve`](crate::solve) always runs
    /// single-variant regardless of this setting, while the
    /// [`Allocator`](crate::Allocator) front-end races a portfolio
    /// whenever `threads > 1`.
    pub threads: usize,
    /// Portfolio competitors. Empty (the default) means
    /// [`default_variants`](crate::default_variants): this
    /// configuration first, then every §5.1 selection strategy crossed
    /// with both backtrack policies.
    pub variants: Vec<PortfolioVariant>,
    /// Staged-retry settings for the escalation ladder
    /// ([`EscalationLadder`](crate::EscalationLadder)): stage budget
    /// slicing, spill-round cap, and inter-stage backoff.
    pub ladder: LadderConfig,
    /// Structured-event tracer threaded through every layer of the
    /// solve (search spans, portfolio variant lifecycle, ladder stages,
    /// CP conflict metrics). The default [`Tracer::disabled`] costs one
    /// predicted branch per instrumentation point and allocates
    /// nothing; build an enabled tracer with
    /// [`Tracer::logical`]/[`Tracer::wall`] or
    /// [`Tracer::from_env`] (`TELA_TRACE=1`).
    pub tracer: Tracer,
    /// Seed for block-ordering perturbation
    /// (`tela_heuristics::perturb`). `0` (the default) means no
    /// perturbation — selection behaves bit-for-bit like the canonical
    /// strategies. The adaptive portfolio sets nonzero seeds when
    /// restarting clearly-losing variants; it is also available directly
    /// for randomized-restart experiments.
    pub perturbation_seed: u64,
    /// Adaptive portfolio scheduling: learned variant ranking plus the
    /// bandit budget scheduler ([`AdaptiveConfig`]). Inert unless a
    /// ranker is configured.
    pub adaptive: AdaptiveConfig,
    /// Deterministic faults to inject into every solve (chaos testing
    /// only; available under the `fault-inject` feature). `None`
    /// injects nothing.
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<tela_model::FaultPlan>,
}

impl Default for TelaConfig {
    fn default() -> Self {
        TelaConfig {
            selection: SelectionStrategy::TELAMALLOC_ORDER.to_vec(),
            solver_guided_placement: true,
            contention_grouping: true,
            conflict_guided_backtracking: true,
            fixed_backtrack_steps: 1,
            candidate_prepending: true,
            max_candidates_per_level: 16,
            stuck_subtree_limit: 100,
            split_independent: true,
            preflight_audit: true,
            minimize_conflicts: false,
            threads: 1,
            variants: Vec::new(),
            ladder: LadderConfig::default(),
            tracer: Tracer::disabled(),
            perturbation_seed: 0,
            adaptive: AdaptiveConfig::default(),
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }
}

impl TelaConfig {
    /// The configuration used for the paper's Figure 14 strategy
    /// comparison: a single block-selection strategy, lowest-position
    /// placement, and chronological ("last valid point") backtracking.
    pub fn single_strategy(strategy: SelectionStrategy) -> Self {
        TelaConfig {
            selection: vec![strategy],
            contention_grouping: false,
            conflict_guided_backtracking: false,
            candidate_prepending: false,
            ..TelaConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TelaConfig::default();
        assert_eq!(c.selection, SelectionStrategy::TELAMALLOC_ORDER.to_vec());
        assert!(c.solver_guided_placement);
        assert!(c.contention_grouping);
        assert!(c.conflict_guided_backtracking);
        assert!(c.candidate_prepending);
        assert_eq!(c.stuck_subtree_limit, 100);
        assert!(c.preflight_audit);
        assert_eq!(c.threads, 1);
        assert!(c.variants.is_empty());
    }

    #[test]
    fn single_strategy_disables_search_smarts() {
        let c = TelaConfig::single_strategy(SelectionStrategy::MaxSize);
        assert_eq!(c.selection, vec![SelectionStrategy::MaxSize]);
        assert!(!c.contention_grouping);
        assert!(!c.conflict_guided_backtracking);
        assert!(!c.candidate_prepending);
    }
}
