//! Major-backtrack target selection (paper §5.4 and §6).
//!
//! When every candidate at a decision point is exhausted, TelaMalloc must
//! decide how far up the search tree to jump. The search engine gathers
//! the *candidate backtrack targets* (§6.2) — the decision levels of the
//! placements implicated in the most recent conflict, padded with
//! exponential-range fillers so the search cannot get stuck in one part
//! of the tree — and delegates the choice to a [`BacktrackPolicy`].
//!
//! Three policies live here; the learned (gradient-boosted-tree) policy
//! of §6 is provided by the `tela-learned` crate through the same trait.

use tela_model::{Address, BufferId, Problem};

/// One placement on the current search path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedDecision {
    /// The buffer placed by this decision.
    pub block: BufferId,
    /// The address it was placed at.
    pub address: Address,
}

/// The §6.4 feature vector of one candidate backtrack target.
///
/// Size, lifetime, and contention are normalized to the problem's
/// capacity and time horizon; counters are raw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetFeatures {
    /// Block size / memory capacity.
    pub size: f64,
    /// Block lifetime / problem horizon.
    pub lifetime: f64,
    /// Block contention / memory capacity.
    pub contention: f64,
    /// Decision level at which the block was placed.
    pub decision_level: f64,
    /// How often this block appeared in a major backtrack's reason.
    pub culprit_appearances: f64,
    /// How often the search backtracked to this point.
    pub backtracks_to_here: f64,
    /// Backtracks within the subtree rooted at this point (since last
    /// visited).
    pub subtree_backtracks: f64,
    /// 1.0 if the block is in the same contention phase as the point we
    /// are backtracking from.
    pub same_region: f64,
    /// Total backtracks in the search so far.
    pub total_backtracks: f64,
}

impl TargetFeatures {
    /// Number of features in [`TargetFeatures::to_array`].
    pub const LEN: usize = 9;

    /// The features as a fixed-size array, in a stable order (the order
    /// listed in §6.4).
    pub fn to_array(&self) -> [f64; Self::LEN] {
        [
            self.size,
            self.lifetime,
            self.contention,
            self.decision_level,
            self.culprit_appearances,
            self.backtracks_to_here,
            self.subtree_backtracks,
            self.same_region,
            self.total_backtracks,
        ]
    }

    /// Human-readable names of the features, index-aligned with
    /// [`TargetFeatures::to_array`].
    pub const NAMES: [&'static str; Self::LEN] = [
        "size",
        "lifetime",
        "contention",
        "decision_level",
        "culprit_appearances",
        "backtracks_to_here",
        "subtree_backtracks",
        "same_region",
        "total_backtracks",
    ];
}

/// One candidate backtrack target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktrackTarget {
    /// Decision level to jump back to (the placement at this level is
    /// undone and reconsidered).
    pub level: usize,
    /// The block placed at that level.
    pub block: BufferId,
    /// Whether this target came from the conflict's culprit set (true)
    /// or is an exponential-range filler (false).
    pub from_conflict: bool,
    /// The §6.4 features of this target.
    pub features: TargetFeatures,
}

/// Everything a [`BacktrackPolicy`] may inspect when choosing a target.
#[derive(Debug)]
pub struct BacktrackContext<'a> {
    /// The problem being solved (a sub-problem if independent splitting
    /// is active).
    pub problem: &'a Problem,
    /// Candidate targets, in increasing level order.
    pub targets: &'a [BacktrackTarget],
    /// The placements on the current path, index = decision level.
    pub path: &'a [PlacedDecision],
    /// The level of the exhausted decision point we are leaving.
    pub current_level: usize,
    /// Total backtracks (minor + major) so far.
    pub total_backtracks: u64,
}

/// What the policy wants the engine to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BacktrackChoice {
    /// Jump to this decision level (a level from
    /// [`BacktrackContext::targets`]).
    Target(usize),
    /// Do not jump: stay at the current decision point and retry with
    /// every unplaced buffer as a candidate (the §6.5 fallback used when
    /// the learned model is not confident).
    StayAndTryAll,
}

/// Cheap per-step summary offered to [`BacktrackPolicy::expand_candidates`]
/// (the §8.3 extension hook).
#[derive(Debug, Clone, Copy)]
pub struct StepContext {
    /// Decision level about to be opened.
    pub level: usize,
    /// Unplaced buffers remaining.
    pub unplaced: usize,
    /// Total buffers in the (sub-)problem.
    pub total_buffers: usize,
    /// Backtracks within the current subtree so far.
    pub subtree_backtracks: u64,
    /// Total backtracks in the search so far.
    pub total_backtracks: u64,
}

/// Chooses where to land on a major backtrack.
///
/// Implementations must return either one of the offered target levels
/// or [`BacktrackChoice::StayAndTryAll`].
pub trait BacktrackPolicy {
    /// Chooses the backtrack destination for one major backtrack.
    fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice;

    /// Per-step hook (the paper's §8.3 forward-looking extension: "a
    /// single, shallow decision tree that executes at every step of the
    /// search and identifies whether to run a more expensive
    /// heuristic"). Returning true makes the engine generate the *full*
    /// candidate queue (every unplaced block, uncapped) at this decision
    /// point instead of the capped strategy picks.
    ///
    /// The default never expands, reproducing the paper's shipping
    /// behaviour.
    fn expand_candidates(&mut self, _ctx: &StepContext) -> bool {
        false
    }
}

/// The paper's §5.4 default: jump to the second-to-last conflicting
/// placement. With the last culprit already excluded from the target
/// list, that is the deepest conflict-derived target. Falls back to one
/// step when the conflict names no earlier placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConflictGuidedPolicy;

impl BacktrackPolicy for ConflictGuidedPolicy {
    fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
        let deepest_conflict = ctx
            .targets
            .iter()
            .filter(|t| t.from_conflict)
            .map(|t| t.level)
            .max();
        match deepest_conflict {
            Some(level) => BacktrackChoice::Target(level),
            None => BacktrackChoice::Target(ctx.current_level.saturating_sub(1)),
        }
    }
}

/// The paper's initial implementation: always rewind a fixed number of
/// steps (§5.4 mentions 1–2).
#[derive(Debug, Clone, Copy)]
pub struct FixedStepPolicy(pub usize);

impl BacktrackPolicy for FixedStepPolicy {
    fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
        BacktrackChoice::Target(ctx.current_level.saturating_sub(self.0.max(1)))
    }
}

/// Observes search events; used by the imitation-learning pipeline to
/// harvest training examples (§6.5) without entangling the engine with
/// the learning code.
pub trait SearchObserver {
    /// Called on every major backtrack, after the policy chose.
    fn on_major_backtrack(&mut self, _ctx: &BacktrackContext<'_>, _choice: BacktrackChoice) {}
    /// Called when the search finds a complete solution, with the final
    /// decision path.
    fn on_solved(&mut self, _path: &[PlacedDecision]) {}
}

/// An observer that records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    fn target(level: usize, from_conflict: bool) -> BacktrackTarget {
        BacktrackTarget {
            level,
            block: BufferId::new(0),
            from_conflict,
            features: TargetFeatures {
                size: 0.0,
                lifetime: 0.0,
                contention: 0.0,
                decision_level: level as f64,
                culprit_appearances: 0.0,
                backtracks_to_here: 0.0,
                subtree_backtracks: 0.0,
                same_region: 0.0,
                total_backtracks: 0.0,
            },
        }
    }

    fn ctx<'a>(
        problem: &'a Problem,
        targets: &'a [BacktrackTarget],
        current: usize,
    ) -> BacktrackContext<'a> {
        BacktrackContext {
            problem,
            targets,
            path: &[],
            current_level: current,
            total_backtracks: 0,
        }
    }
    use tela_model::Problem;

    #[test]
    fn conflict_guided_picks_deepest_conflict_target() {
        let p = examples::figure1();
        let targets = [
            target(2, true),
            target(4, false),
            target(7, true),
            target(8, false),
        ];
        let choice = ConflictGuidedPolicy.choose(&ctx(&p, &targets, 12));
        assert_eq!(choice, BacktrackChoice::Target(7));
    }

    #[test]
    fn conflict_guided_falls_back_to_one_step() {
        let p = examples::figure1();
        let targets = [target(4, false)];
        let choice = ConflictGuidedPolicy.choose(&ctx(&p, &targets, 12));
        assert_eq!(choice, BacktrackChoice::Target(11));
    }

    #[test]
    fn fixed_step_rewinds_requested_amount() {
        let p = examples::figure1();
        assert_eq!(
            FixedStepPolicy(2).choose(&ctx(&p, &[], 10)),
            BacktrackChoice::Target(8)
        );
        assert_eq!(
            FixedStepPolicy(0).choose(&ctx(&p, &[], 10)),
            BacktrackChoice::Target(9)
        );
        assert_eq!(
            FixedStepPolicy(5).choose(&ctx(&p, &[], 3)),
            BacktrackChoice::Target(0)
        );
    }

    #[test]
    fn feature_array_order_is_stable() {
        let f = TargetFeatures {
            size: 1.0,
            lifetime: 2.0,
            contention: 3.0,
            decision_level: 4.0,
            culprit_appearances: 5.0,
            backtracks_to_here: 6.0,
            subtree_backtracks: 7.0,
            same_region: 8.0,
            total_backtracks: 9.0,
        };
        assert_eq!(f.to_array(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(TargetFeatures::NAMES.len(), TargetFeatures::LEN);
    }
}
