//! Adaptive portfolio scheduling: learned variant ranking plus a
//! bandit-style budget scheduler.
//!
//! The blind portfolio (see [`crate::portfolio`]) races every
//! strategy×policy variant with the full budget each — robust, but
//! `threads`-times the work even when one variant would win in
//! microseconds. This module replaces the fire-and-forget race with a
//! *scheduled* one when a [`VariantRanker`] is configured:
//!
//! 1. **Seeding.** The instance's
//!    [`InstanceStats::feature_vector`] is scored per variant by the
//!    ranker (a `tela-learned` GBT trained from suite self-play) and the
//!    predicted top-k variants enter the race first.
//! 2. **Bandit rounds.** The budget is sliced into geometrically
//!    growing step quotas. Each round runs the selected arms from
//!    scratch under the round quota; between rounds a UCB score over
//!    *observed progress* (committed-prefix depth, with steps,
//!    propagations and backtracks on the round report) reallocates the
//!    k slots — promising arms deepen, clear losers restart with a
//!    *perturbed* block ordering (`tela_heuristics::perturb`), and
//!    never-tried arms keep an exploration bonus so no variant is
//!    starved.
//! 3. **Determinism.** Quota schedules depend only on the round index
//!    and the outer budget, never on wall time. With `threads == 1`
//!    the whole schedule — selection, quotas, restarts, winner — is a
//!    pure function of `(problem, config, budget)`.
//!
//! **Fallback semantics:** with no ranker configured (no model file),
//! or when a `fault-inject` plan is active, [`crate::solve_portfolio`]
//! never enters this module and behaves bit-for-bit like the blind
//! race — the trace-determinism and chaos suites hold unchanged.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tela_heuristics::perturb;
use tela_model::{Budget, BufferId, InstanceStats, Problem, SolveOutcome, SolveStats};

use crate::backtrack::PlacedDecision;
use crate::config::TelaConfig;
use crate::portfolio::{
    begin_variant, end_variant, finish_race, is_decisive, lock_resilient, note_partial, note_win,
    run_variant_isolated, variant_budget, PortfolioResult, PortfolioVariant, VariantOutcome,
    VariantReport,
};

/// Scores portfolio variants for one instance; higher means "predicted
/// to settle the race sooner". Implementations must be deterministic —
/// the adaptive schedule is replayed byte-for-byte in tests.
///
/// The core crate only defines the interface; `tela-learned` provides
/// the trained GBT implementation (`PortfolioRanker`), keeping the
/// dependency arrow pointing the same way as for
/// [`BacktrackPolicy`](crate::BacktrackPolicy).
pub trait VariantRanker: Send + Sync + std::fmt::Debug {
    /// One score per entry of `variants`, aligned by index. `features`
    /// is an [`InstanceStats::feature_vector`].
    fn scores(&self, features: &[f64], variants: &[PortfolioVariant]) -> Vec<f64>;
}

/// Knobs for the adaptive portfolio scheduler. The scheduler only
/// activates when [`AdaptiveConfig::ranker`] is set (and no fault plan
/// is active); otherwise the portfolio runs the blind race unchanged.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The learned variant ranker. `None` (the default) disables
    /// adaptive scheduling entirely.
    pub ranker: Option<Arc<dyn VariantRanker>>,
    /// Arms raced concurrently per round. `0` (the default) means "as
    /// many as `threads`".
    pub top_k: usize,
    /// Step quota of round 0.
    pub initial_quota: u64,
    /// Geometric growth factor of the per-round quota (clamped to ≥ 2).
    pub quota_growth: u64,
    /// Hard cap on the number of rounds.
    pub max_rounds: u32,
    /// UCB exploration coefficient: weight of the `sqrt(ln N / n)`
    /// bonus against observed depth in arm selection.
    pub exploration: f64,
    /// Base seed for restart perturbation (`tela_heuristics::perturb`).
    /// Every arm's first run is always unperturbed (seed 0), so the
    /// canonical variant behavior is tried before any jittered restart.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ranker: None,
            top_k: 0,
            initial_quota: 4096,
            quota_growth: 8,
            max_rounds: 8,
            exploration: 0.5,
            seed: 0x7E1A,
        }
    }
}

/// How the adaptive scheduler spent the race, round by round. Attached
/// to [`PortfolioResult::adaptive`]; `PartialEq` so determinism tests
/// can compare whole schedules across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Raw ranker score per variant (index-aligned with the race's
    /// variant list).
    pub scores: Vec<f64>,
    /// The predicted top-k variant indices seeded into round 0, best
    /// first.
    pub seeded: Vec<usize>,
    /// One entry per executed round.
    pub rounds: Vec<RoundReport>,
    /// Total perturbed restarts issued across all arms.
    pub restarts: u64,
}

/// One bandit round of the adaptive race.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round ordinal (0-based).
    pub round: u32,
    /// The planned per-arm step quota of this round (individual arms
    /// may run under less when their share of the budget is nearly
    /// spent — see [`RunReport::quota`]).
    pub quota: u64,
    /// The arms that ran, in selection order (best first).
    pub runs: Vec<RunReport>,
}

/// One arm execution within a round.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Variant index into the race's variant list.
    pub variant: usize,
    /// The step quota this run actually received.
    pub quota: u64,
    /// Perturbation seed the run used (0 = canonical ordering).
    pub perturbation: u64,
    /// Steps the run consumed.
    pub steps: u64,
    /// CP propagations the run performed (progress signal).
    pub propagations: u64,
    /// Committed-prefix depth when the run stopped (the full problem
    /// size when it solved).
    pub depth: usize,
    /// The run's outcome label (`solved`, `gave_up`, `budget_exceeded`,
    /// `infeasible`, or `panicked`).
    pub outcome: &'static str,
}

/// Live bandit state of one variant arm.
#[derive(Debug, Clone, Copy, Default)]
struct Arm {
    /// Completed runs.
    runs: u32,
    /// Steps consumed across all runs.
    spent: u64,
    /// Deepest committed prefix any run of this arm reached.
    best_depth: usize,
    /// Perturbed restarts issued so far (also the perturbation epoch of
    /// the next run).
    restarts: u64,
    /// The arm consumed its full per-arm step budget; it cannot be
    /// selected again.
    exhausted: bool,
}

/// One arm's raw result within a round.
struct RoundRun {
    slot: usize,
    variant: usize,
    quota: u64,
    perturbation: u64,
    outcome: Result<crate::search::TelaResult, String>,
    thread: u32,
}

/// The per-round quota: `initial · growth^round`, saturating, capped by
/// the outer per-arm step budget.
// tela-lint: hot-path
pub(crate) fn planned_quota(round: u32, initial: u64, growth: u64, cap: Option<u64>) -> u64 {
    let growth = growth.max(2);
    let mut quota = initial.max(1);
    for _ in 0..round {
        quota = quota.saturating_mul(growth);
        if let Some(cap) = cap {
            if quota >= cap {
                return cap;
            }
        }
    }
    match cap {
        Some(cap) => quota.min(cap),
        None => quota,
    }
}

/// The UCB selection score of one arm: observed best depth (as a
/// fraction of the problem) — or the ranker prior for a never-run arm —
/// plus the exploration bonus.
// tela-lint: hot-path
fn ucb_score(arm: &Arm, prior: f64, problem_len: usize, total_runs: u32, exploration: f64) -> f64 {
    let value = if arm.runs == 0 {
        prior
    } else {
        arm.best_depth as f64 / problem_len.max(1) as f64
    };
    let bonus = exploration * (f64::from(1 + total_runs).ln() / f64::from(1 + arm.runs)).sqrt();
    value + bonus
}

/// Selects up to `k` arm indices by UCB score into `out` (cleared
/// first), best first; deterministic tie-breaks by prior then index.
/// Exhausted arms never qualify.
// tela-lint: hot-path
fn select_arms(
    out: &mut Vec<usize>,
    arms: &[Arm],
    priors: &[f64],
    problem_len: usize,
    total_runs: u32,
    exploration: f64,
    k: usize,
) {
    out.clear();
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (i, arm) in arms.iter().enumerate() {
            if arm.exhausted || out.contains(&i) {
                continue;
            }
            let score = ucb_score(arm, priors[i], problem_len, total_runs, exploration);
            let better = match best {
                None => true,
                Some((bi, bs)) => {
                    score > bs
                        || (score == bs
                            && (priors[i] > priors[bi] || (priors[i] == priors[bi] && i < bi)))
                }
            };
            if better {
                best = Some((i, score));
            }
        }
        match best {
            Some((i, _)) => out.push(i),
            None => break,
        }
    }
}

/// Min-max normalizes raw ranker scores into `[0, 1]` priors
/// (degenerate spans collapse to 0.5 so every arm keeps a usable
/// optimistic initialization).
fn normalize_priors(raw: &[f64]) -> Vec<f64> {
    let lo = raw.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
        return vec![0.5; raw.len()];
    }
    raw.iter().map(|&s| (s - lo) / (hi - lo)).collect()
}

/// The perturbation seed of run number `restarts` of variant `variant`:
/// 0 (canonical ordering) for the first run, a nonzero splitmix-derived
/// seed afterwards.
fn perturbation_seed(base: u64, variant: usize, restarts: u64) -> u64 {
    if restarts == 0 {
        return 0;
    }
    let mixed = perturb::splitmix64(base ^ ((variant as u64) << 32) ^ restarts);
    mixed.max(1)
}

/// Runs the adaptive race. Called by the portfolio driver once the
/// preflight passed, a ranker is configured, and no fault plan is
/// active.
pub(crate) fn race_adaptive(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
    threads: usize,
    config: &TelaConfig,
    ranker: &dyn VariantRanker,
) -> PortfolioResult {
    let adaptive = &config.adaptive;
    let tracer = &config.tracer;
    let n = variants.len();
    let features = InstanceStats::of(problem).feature_vector();
    let scores = ranker.scores(&features, variants);
    debug_assert_eq!(scores.len(), n, "ranker must score every variant");
    let scores = if scores.len() == n {
        scores
    } else {
        vec![0.0; n]
    };
    let priors = normalize_priors(&scores);
    let k = if adaptive.top_k == 0 {
        threads
    } else {
        adaptive.top_k
    }
    .clamp(1, n);
    let per_arm_cap = budget.max_steps();

    let mut arms = vec![Arm::default(); n];
    let mut reports: Vec<Option<VariantReport>> = vec![None; n];
    let mut best_partial: Option<(Vec<PlacedDecision>, Vec<BufferId>)> = None;
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    select_arms(
        &mut selected,
        &arms,
        &priors,
        problem.len(),
        0,
        adaptive.exploration,
        k,
    );
    let mut report = AdaptiveReport {
        scores,
        seeded: selected.clone(),
        rounds: Vec::new(),
        restarts: 0,
    };
    if tracer.enabled() {
        tracer.count("portfolio.adaptive.races", 1);
        let seeded: Vec<String> = selected.iter().map(|v| variants[*v].name.clone()).collect();
        tracer.instant(
            "portfolio",
            "adaptive_seed",
            vec![
                ("top_k".into(), k.into()),
                ("seeded".into(), seeded.join(",").into()),
            ],
        );
    }

    let mut winner: Option<(usize, u32, crate::search::TelaResult)> = None;
    let mut total_runs = 0u32;
    let mut round = 0u32;
    while winner.is_none() && round < adaptive.max_rounds && !selected.is_empty() {
        if budget.cancelled() || budget.deadline_passed() {
            break;
        }
        let quota = planned_quota(
            round,
            adaptive.initial_quota,
            adaptive.quota_growth,
            per_arm_cap,
        );
        let propagations_before = tracer.counter_value("cp.propagations").unwrap_or(0);
        let runs = if threads <= 1 || selected.len() <= 1 {
            run_round_sequential(problem, budget, variants, config, &selected, &arms, quota)
        } else {
            run_round_parallel(
                problem, budget, variants, config, &selected, &arms, quota, threads,
            )
        };

        let mut round_report = RoundReport {
            round,
            quota,
            runs: Vec::with_capacity(runs.len()),
        };
        // Process in selection order: at `threads == 1` this makes the
        // whole round report (and the winner) deterministic.
        for run in runs {
            let arm = &mut arms[run.variant];
            arm.runs += 1;
            total_runs += 1;
            match run.outcome {
                Ok(result) => {
                    let depth = if result.outcome.is_solved() {
                        problem.len()
                    } else {
                        result.partial.len()
                    };
                    let decisive = is_decisive(&result.outcome);
                    arm.spent += result.stats.steps;
                    if let Some(cap) = per_arm_cap {
                        arm.exhausted |= arm.spent >= cap;
                    }
                    round_report.runs.push(RunReport {
                        variant: run.variant,
                        quota: run.quota,
                        perturbation: run.perturbation,
                        steps: result.stats.steps,
                        propagations: result.stats.propagations,
                        depth,
                        outcome: result.outcome.label(),
                    });
                    note_partial(&mut best_partial, &result);
                    reports[run.variant] = Some(VariantReport {
                        name: variants[run.variant].name.clone(),
                        outcome: VariantOutcome::Finished(result.outcome.clone()),
                        stats: result.stats,
                    });
                    if decisive {
                        if winner.is_none() {
                            winner = Some((run.variant, run.thread, result));
                        }
                        continue;
                    }
                    // Restart policy: an arm that exhausted its search
                    // space (gave up) or made no depth progress on its
                    // own (not merely cancelled by a round winner) is a
                    // clear loser — its next run gets a perturbed
                    // ordering.
                    let lost_on_its_own = !result.stats.cancelled;
                    let stalled = depth <= arm.best_depth && arm.runs > 1;
                    if lost_on_its_own
                        && (matches!(result.outcome, SolveOutcome::GaveUp) || stalled)
                    {
                        arm.restarts += 1;
                        report.restarts += 1;
                    }
                    arm.best_depth = arm.best_depth.max(depth);
                }
                Err(message) => {
                    round_report.runs.push(RunReport {
                        variant: run.variant,
                        quota: run.quota,
                        perturbation: run.perturbation,
                        steps: 0,
                        propagations: 0,
                        depth: 0,
                        outcome: "panicked",
                    });
                    reports[run.variant] = Some(VariantReport {
                        name: variants[run.variant].name.clone(),
                        outcome: VariantOutcome::Panicked { message },
                        stats: SolveStats::default(),
                    });
                    arm.restarts += 1;
                    report.restarts += 1;
                }
            }
        }
        if tracer.enabled() {
            let propagations = tracer
                .counter_value("cp.propagations")
                .unwrap_or(0)
                .saturating_sub(propagations_before);
            tracer.count("portfolio.adaptive.rounds", 1);
            tracer.instant(
                "portfolio",
                "adaptive_round",
                vec![
                    ("round".into(), u64::from(round).into()),
                    ("quota".into(), quota.into()),
                    ("arms".into(), round_report.runs.len().into()),
                    ("propagations".into(), propagations.into()),
                ],
            );
        }
        report.rounds.push(round_report);
        round += 1;
        if winner.is_none() {
            select_arms(
                &mut selected,
                &arms,
                &priors,
                problem.len(),
                total_runs,
                adaptive.exploration,
                k,
            );
        }
    }
    if tracer.enabled() {
        tracer.count("portfolio.adaptive.restarts", report.restarts);
        if let Some((index, _, _)) = &winner {
            note_win(&mut tracer.buffer(), *index, &variants[*index]);
        }
    }
    let mut race = finish_race(winner, variants, reports, best_partial);
    race.adaptive = Some(report);
    race
}

/// Builds the budget and perturbed variant for one arm run.
fn arm_run_setup(
    budget: &Budget,
    variants: &[PortfolioVariant],
    config: &TelaConfig,
    arm: &Arm,
    variant: usize,
    quota: u64,
) -> (Budget, PortfolioVariant, u64, u64) {
    let per_arm_cap = budget.max_steps();
    let arm_quota = match per_arm_cap {
        Some(cap) => quota.min(cap.saturating_sub(arm.spent)),
        None => quota,
    };
    let pseed = perturbation_seed(config.adaptive.seed, variant, arm.restarts);
    let mut v = variants[variant].clone();
    v.config.perturbation_seed = pseed;
    let worker_budget = variant_budget(budget, config, variant).with_max_steps(arm_quota);
    (worker_budget, v, arm_quota, pseed)
}

/// One round at `threads == 1` (or a single selected arm): arms run in
/// selection order; the first decisive arm ends the round, later arms
/// never start — exactly mirroring the blind sequential race's
/// determinism.
fn run_round_sequential(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
    config: &TelaConfig,
    selected: &[usize],
    arms: &[Arm],
    quota: u64,
) -> Vec<RoundRun> {
    let mut buf = config.tracer.buffer();
    let mut out = Vec::with_capacity(selected.len());
    for (slot, &variant) in selected.iter().enumerate() {
        let (worker_budget, v, arm_quota, pseed) =
            arm_run_setup(budget, variants, config, &arms[variant], variant, quota);
        let span = begin_variant(&mut buf, variant, &v);
        let outcome = run_variant_isolated(problem, &worker_budget, &v);
        match &outcome {
            Ok(result) => end_variant(&mut buf, span, variant, &v, Ok(result), config),
            Err(message) => end_variant(&mut buf, span, variant, &v, Err(message), config),
        }
        let decisive = matches!(&outcome, Ok(r) if is_decisive(&r.outcome));
        out.push(RoundRun {
            slot,
            variant,
            quota: arm_quota,
            perturbation: pseed,
            outcome,
            thread: 0,
        });
        if decisive {
            break;
        }
    }
    out
}

/// One round on `threads` workers: arms are pulled from the selection
/// list by a shared cursor; the first decisive finish cancels the rest
/// of the round (the cancelled arms still report, with
/// `stats.cancelled` set). Results are returned in selection order.
#[allow(clippy::too_many_arguments)]
fn run_round_parallel(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
    config: &TelaConfig,
    selected: &[usize],
    arms: &[Arm],
    quota: u64,
    threads: usize,
) -> Vec<RoundRun> {
    let cancel = Arc::new(AtomicBool::new(false));
    let claimed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<RoundRun>>> = selected.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(selected.len());
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let cancel = &cancel;
            let claimed = &claimed;
            let slots = &slots;
            let cursor = &cursor;
            let arms = &arms;
            scope.spawn(move || {
                let mut buf = config.tracer.buffer();
                loop {
                    if cancel.load(Ordering::Acquire) {
                        break;
                    }
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&variant) = selected.get(slot) else {
                        break;
                    };
                    let (worker_budget, v, arm_quota, pseed) =
                        arm_run_setup(budget, variants, config, &arms[variant], variant, quota);
                    let worker_budget = worker_budget.with_cancel(Arc::clone(cancel));
                    let span = begin_variant(&mut buf, variant, &v);
                    let outcome = run_variant_isolated(problem, &worker_budget, &v);
                    match &outcome {
                        Ok(result) => {
                            end_variant(&mut buf, span, variant, &v, Ok(result), config);
                            if is_decisive(&result.outcome) && !claimed.swap(true, Ordering::AcqRel)
                            {
                                cancel.store(true, Ordering::Release);
                            }
                        }
                        Err(message) => {
                            end_variant(&mut buf, span, variant, &v, Err(message), config)
                        }
                    }
                    *lock_resilient(&slots[slot]) = Some(RoundRun {
                        slot,
                        variant,
                        quota: arm_quota,
                        perturbation: pseed,
                        outcome,
                        thread: worker as u32,
                    });
                }
            });
        }
    });
    let mut out: Vec<RoundRun> = slots
        .into_iter()
        .filter_map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .collect();
    out.sort_by_key(|r| r.slot);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_quota_grows_geometrically_to_the_cap() {
        assert_eq!(planned_quota(0, 4096, 8, Some(200_000)), 4096);
        assert_eq!(planned_quota(1, 4096, 8, Some(200_000)), 32_768);
        assert_eq!(planned_quota(2, 4096, 8, Some(200_000)), 200_000);
        assert_eq!(planned_quota(9, 4096, 8, Some(200_000)), 200_000);
        assert_eq!(planned_quota(2, 4096, 8, None), 262_144);
        // Saturation instead of overflow.
        assert_eq!(planned_quota(60, u64::MAX / 2, 8, None), u64::MAX);
    }

    #[test]
    fn ucb_prefers_unrun_arms_with_high_priors() {
        let fresh = Arm::default();
        let stale = Arm {
            runs: 4,
            best_depth: 10,
            ..Arm::default()
        };
        // Identical priors: the fresh arm's larger bonus wins.
        let fresh_score = ucb_score(&fresh, 0.8, 100, 4, 0.5);
        let stale_score = ucb_score(&stale, 0.8, 100, 4, 0.5);
        assert!(fresh_score > stale_score);
    }

    #[test]
    fn select_arms_is_deterministic_and_skips_exhausted() {
        let mut arms = vec![Arm::default(); 5];
        arms[2].exhausted = true;
        let priors = vec![0.1, 0.9, 1.0, 0.9, 0.2];
        let mut picked = Vec::new();
        select_arms(&mut picked, &arms, &priors, 10, 0, 0.5, 3);
        // Exhausted arm 2 never selected; ties (1 vs 3) break by index.
        assert_eq!(picked, vec![1, 3, 4]);
        let mut again = Vec::new();
        select_arms(&mut again, &arms, &priors, 10, 0, 0.5, 3);
        assert_eq!(picked, again);
    }

    #[test]
    fn first_run_of_every_arm_is_unperturbed() {
        for v in 0..9 {
            assert_eq!(perturbation_seed(0x7E1A, v, 0), 0);
            assert_ne!(perturbation_seed(0x7E1A, v, 1), 0);
            assert_ne!(
                perturbation_seed(0x7E1A, v, 1),
                perturbation_seed(0x7E1A, v, 2)
            );
        }
    }

    #[test]
    fn degenerate_priors_normalize_to_half() {
        assert_eq!(normalize_priors(&[0.3, 0.3, 0.3]), vec![0.5, 0.5, 0.5]);
        let p = normalize_priors(&[0.0, 1.0, 0.5]);
        assert_eq!(p, vec![0.0, 1.0, 0.5]);
    }
}
