//! Parallel portfolio search: race strategy×policy variants, first
//! solution wins.
//!
//! The paper's search is sensitive to the block-selection strategy and
//! backtrack policy (Figure 14): no single variant dominates across
//! workloads. The portfolio hedges that variance by racing diverse
//! configurations — the full TelaMalloc configuration plus every §5.1
//! selection strategy crossed with both backtrack policies — on scoped
//! OS threads. The first worker to reach a *decisive* outcome (a
//! validated solution, or a proof of infeasibility) claims the race and
//! cancels the rest through a shared [`AtomicBool`] threaded into every
//! worker's [`Budget`]; the CP solver and engine poll that flag on
//! their step boundaries, so losers stop within one step.
//!
//! The shared-pruning channel is deliberately lock-light: the only
//! atomics on the hot path are the cancellation flag (read) and one
//! `swap` per decisive finish (claim); the winner slot's mutex is
//! touched once per race. The `tela-audit` preflight runs once, up
//! front, for the whole race — a certificate of infeasibility aborts
//! the portfolio before any worker spawns.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tela_audit::Verdict;
use tela_heuristics::SelectionStrategy;
use tela_model::{Budget, Problem, SolveOutcome, SolveStats};

use crate::backtrack::{NullObserver, PlacedDecision};
use crate::config::TelaConfig;
use crate::search::{default_policy, solve_with, TelaResult};

/// One competitor in the portfolio race: a named search configuration.
#[derive(Debug, Clone)]
pub struct PortfolioVariant {
    /// Display name, e.g. `"max-size/fixed-step"`.
    pub name: String,
    /// The configuration this variant runs. Its portfolio fields
    /// (`threads`, `variants`) and `preflight_audit` are ignored: races
    /// never nest, and the driver preflights once for everyone.
    pub config: TelaConfig,
}

/// What one variant did during the race.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// The variant's display name.
    pub name: String,
    /// The variant's own outcome. Losers typically report
    /// `BudgetExceeded` with [`SolveStats::cancelled`] set.
    pub outcome: SolveOutcome,
    /// The variant's own search statistics.
    pub stats: SolveStats,
}

/// Result of a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The winning variant's result (or an aggregate `BudgetExceeded` /
    /// `GaveUp` when nobody was decisive). `stats.elapsed` is the race's
    /// wall-clock time, not the winner's own.
    pub result: TelaResult,
    /// Index into the variant list of the claiming worker, if any.
    pub winner: Option<usize>,
    /// Per-variant reports, indexed like the variant list. `None` means
    /// the race was cancelled before that variant started.
    pub reports: Vec<Option<VariantReport>>,
}

/// The default portfolio: the full TelaMalloc configuration (`base`)
/// first, then every §5.1 selection strategy crossed with both
/// backtrack policies (conflict-guided §5.4 vs. fixed-step) — nine
/// variants in total.
///
/// Variant 0 running `base` makes the sequential (`threads == 1`) race
/// behave exactly like [`solve`](crate::solve) whenever the base
/// configuration succeeds: later variants only run if earlier ones give
/// up within the budget.
pub fn default_variants(base: &TelaConfig) -> Vec<PortfolioVariant> {
    let mut variants = vec![PortfolioVariant {
        name: "telamalloc".to_string(),
        config: base.clone(),
    }];
    for strategy in SelectionStrategy::ALL {
        for (conflict_guided, policy_name) in [(true, "conflict-guided"), (false, "fixed-step")] {
            let mut config = TelaConfig::single_strategy(strategy);
            config.conflict_guided_backtracking = conflict_guided;
            variants.push(PortfolioVariant {
                name: format!("{strategy}/{policy_name}"),
                config,
            });
        }
    }
    variants
}

/// Worker-side view of a variant's configuration: the driver already
/// preflighted, and races never nest.
fn worker_config(variant: &PortfolioVariant) -> TelaConfig {
    let mut config = variant.config.clone();
    config.preflight_audit = false;
    config.threads = 1;
    config.variants = Vec::new();
    config
}

/// Runs one variant to completion under `budget` and reports.
fn run_variant(problem: &Problem, budget: &Budget, variant: &PortfolioVariant) -> TelaResult {
    let config = worker_config(variant);
    let mut policy = default_policy(&config);
    let mut observer = NullObserver;
    solve_with(problem, budget, &config, policy.as_mut(), &mut observer)
}

/// A decisive outcome ends the race: a solution, or a proof that no
/// solution exists. `GaveUp` and `BudgetExceeded` are not proofs — some
/// other variant may still succeed.
fn is_decisive(outcome: &SolveOutcome) -> bool {
    matches!(outcome, SolveOutcome::Solved(_) | SolveOutcome::Infeasible)
}

/// Races `config.variants` (or [`default_variants`]) on
/// `config.threads` workers; first decisive outcome wins.
///
/// With `threads == 1` the variants run sequentially in order, so the
/// result is deterministic; with more threads the *winner* may vary
/// between runs, but every returned solution is a real solution and an
/// `Infeasible` result is always backed by a proof (the preflight
/// certificate or an exhaustive sub-search).
///
/// # Example
///
/// ```
/// use telamalloc::{solve_portfolio, TelaConfig};
/// use tela_model::{examples, Budget};
///
/// let config = TelaConfig {
///     threads: 4,
///     ..TelaConfig::default()
/// };
/// let problem = examples::figure1();
/// let race = solve_portfolio(&problem, &Budget::steps(100_000), &config);
/// let solution = race.result.outcome.solution().expect("figure1 is solvable");
/// assert!(solution.validate(&problem).is_ok());
/// ```
pub fn solve_portfolio(problem: &Problem, budget: &Budget, config: &TelaConfig) -> PortfolioResult {
    let start = Instant::now();
    if config.preflight_audit {
        match tela_audit::preflight(problem) {
            Verdict::ProvablyInfeasible(cert) => {
                return PortfolioResult {
                    result: TelaResult {
                        outcome: SolveOutcome::Infeasible,
                        stats: stamp(SolveStats::default(), start),
                        decisions: Vec::new(),
                        certificate: Some(cert),
                    },
                    winner: None,
                    reports: Vec::new(),
                };
            }
            Verdict::TriviallyFeasible(solution) => {
                let decisions = problem
                    .iter()
                    .map(|(id, _)| PlacedDecision {
                        block: id,
                        address: solution.address(id),
                    })
                    .collect();
                return PortfolioResult {
                    result: TelaResult {
                        outcome: SolveOutcome::Solved(solution),
                        stats: stamp(SolveStats::default(), start),
                        decisions,
                        certificate: None,
                    },
                    winner: None,
                    reports: Vec::new(),
                };
            }
            Verdict::NeedsSearch(_) => {}
        }
    }
    let variants = if config.variants.is_empty() {
        default_variants(config)
    } else {
        config.variants.clone()
    };
    let threads = config.threads.max(1).min(variants.len());
    let mut race = if threads == 1 {
        race_sequential(problem, budget, &variants)
    } else {
        race_parallel(problem, budget, &variants, threads)
    };
    race.result.stats.elapsed = start.elapsed();
    race
}

fn stamp(mut stats: SolveStats, start: Instant) -> SolveStats {
    stats.elapsed = start.elapsed();
    stats
}

/// `threads == 1`: run variants in order until one is decisive.
fn race_sequential(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
) -> PortfolioResult {
    let mut reports: Vec<Option<VariantReport>> = vec![None; variants.len()];
    let mut winner = None;
    for (index, variant) in variants.iter().enumerate() {
        let result = run_variant(problem, budget, variant);
        let decisive = is_decisive(&result.outcome);
        reports[index] = Some(VariantReport {
            name: variant.name.clone(),
            outcome: result.outcome.clone(),
            stats: result.stats,
        });
        if decisive {
            winner = Some((index, result));
            break;
        }
    }
    finish_race(winner, reports)
}

/// Step cap for the sequential sprint that precedes a parallel race.
///
/// Most production instances are easy (§2.3): the base variant settles
/// them in well under a few thousand steps. Racing those from a cold
/// start taxes them with thread spawning and CPU time-slicing, so the
/// driver first sprints variant 0 alone at full single-thread speed and
/// only spawns the race for instances the sprint cannot settle. The
/// sprint's steps are the race's only duplicated work, bounded by this
/// cap (and by a quarter of the real budget, so tiny budgets keep most
/// of their steps for the race).
const SPRINT_STEPS: u64 = 4096;

fn sprint_budget(budget: &Budget) -> Budget {
    let cap = match budget.max_steps() {
        Some(cap) => (cap / 4).clamp(1, SPRINT_STEPS),
        None => SPRINT_STEPS,
    };
    budget.clone().with_max_steps(cap)
}

/// `threads > 1`: a short sequential sprint of the base variant, then
/// workers pull variant indices from a shared counter and race; the
/// first decisive finish claims the winner slot and raises the
/// cancellation flag for everyone else.
fn race_parallel(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
    threads: usize,
) -> PortfolioResult {
    let sprint = run_variant(problem, &sprint_budget(budget), &variants[0]);
    if is_decisive(&sprint.outcome) {
        let mut reports: Vec<Option<VariantReport>> = vec![None; variants.len()];
        reports[0] = Some(VariantReport {
            name: variants[0].name.clone(),
            outcome: sprint.outcome.clone(),
            stats: sprint.stats,
        });
        return finish_race(Some((0, sprint)), reports);
    }
    let cancel = Arc::new(AtomicBool::new(false));
    let claimed = AtomicBool::new(false);
    let winner: Mutex<Option<(usize, TelaResult)>> = Mutex::new(None);
    let reports: Vec<Mutex<Option<VariantReport>>> =
        variants.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancel.load(Ordering::Acquire) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(variant) = variants.get(index) else {
                    break;
                };
                let worker_budget = budget.clone().with_cancel(Arc::clone(&cancel));
                let result = run_variant(problem, &worker_budget, variant);
                let decisive = is_decisive(&result.outcome);
                *reports[index].lock().expect("report slot poisoned") = Some(VariantReport {
                    name: variant.name.clone(),
                    outcome: result.outcome.clone(),
                    stats: result.stats,
                });
                // Claim is a single uncontended swap; only the first
                // decisive finisher takes the mutex and flips the flag.
                if decisive && !claimed.swap(true, Ordering::AcqRel) {
                    *winner.lock().expect("winner slot poisoned") = Some((index, result));
                    cancel.store(true, Ordering::Release);
                }
            });
        }
    });
    let winner = winner.into_inner().expect("winner slot poisoned");
    let reports = reports
        .into_iter()
        .map(|slot| slot.into_inner().expect("report slot poisoned"))
        .collect();
    finish_race(winner, reports)
}

/// Builds the final result: the winner's, or an aggregate over every
/// variant that ran when nobody was decisive.
fn finish_race(
    winner: Option<(usize, TelaResult)>,
    reports: Vec<Option<VariantReport>>,
) -> PortfolioResult {
    match winner {
        Some((index, result)) => PortfolioResult {
            result,
            winner: Some(index),
            reports,
        },
        None => {
            let mut stats = SolveStats::default();
            let mut budget_exceeded = false;
            for report in reports.iter().flatten() {
                stats.absorb(&report.stats);
                budget_exceeded |= matches!(report.outcome, SolveOutcome::BudgetExceeded);
            }
            let outcome = if budget_exceeded {
                SolveOutcome::BudgetExceeded
            } else {
                SolveOutcome::GaveUp
            };
            PortfolioResult {
                result: TelaResult {
                    outcome,
                    stats,
                    decisions: Vec::new(),
                    certificate: None,
                },
                winner: None,
                reports,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    #[test]
    fn default_portfolio_has_base_plus_strategy_policy_cross() {
        let base = TelaConfig::default();
        let variants = default_variants(&base);
        assert_eq!(variants.len(), 9);
        assert_eq!(variants[0].name, "telamalloc");
        assert_eq!(variants[0].config.selection, base.selection);
        // 4 strategies × 2 policies, all distinct names.
        let mut names: Vec<&str> = variants.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        assert!(variants
            .iter()
            .skip(1)
            .all(|v| v.config.selection.len() == 1));
    }

    #[test]
    fn preflight_certificate_aborts_the_race() {
        let p = examples::infeasible();
        let config = TelaConfig {
            threads: 4,
            ..TelaConfig::default()
        };
        let race = solve_portfolio(&p, &Budget::unlimited(), &config);
        assert_eq!(race.result.outcome, SolveOutcome::Infeasible);
        // No worker ever started: the certificate settled the race.
        assert!(race.winner.is_none());
        assert!(race.reports.is_empty());
        assert!(race.result.certificate.expect("witness").verify(&p));
    }

    #[test]
    fn sequential_race_skips_later_variants_after_a_win() {
        let p = examples::figure1();
        let config = TelaConfig::default();
        let race = solve_portfolio(&p, &Budget::steps(100_000), &config);
        assert_eq!(race.winner, Some(0));
        assert!(race.reports[0].is_some());
        assert!(race.reports[1..].iter().all(Option::is_none));
    }
}
