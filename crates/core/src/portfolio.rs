//! Parallel portfolio search: race strategy×policy variants, first
//! solution wins.
//!
//! The paper's search is sensitive to the block-selection strategy and
//! backtrack policy (Figure 14): no single variant dominates across
//! workloads. The portfolio hedges that variance by racing diverse
//! configurations — the full TelaMalloc configuration plus every §5.1
//! selection strategy crossed with both backtrack policies — on scoped
//! OS threads. The first worker to reach a *decisive* outcome (a
//! validated solution, or a proof of infeasibility) claims the race and
//! cancels the rest through a shared [`AtomicBool`] threaded into every
//! worker's [`Budget`]; the CP solver and engine poll that flag on
//! their step boundaries, so losers stop within one step.
//!
//! The shared-pruning channel is deliberately lock-light: the only
//! atomics on the hot path are the cancellation flag (read) and one
//! `swap` per decisive finish (claim); the winner slot's mutex is
//! touched once per race. The `tela-audit` preflight runs once, up
//! front, for the whole race — a certificate of infeasibility aborts
//! the portfolio before any worker spawns.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::time::Instant;

use tela_audit::Verdict;
use tela_heuristics::SelectionStrategy;
use tela_model::{Budget, BufferId, Problem, RaceWinner, SolveOutcome, SolveStats};

use crate::adaptive::AdaptiveReport;
use crate::backtrack::{NullObserver, PlacedDecision};
use crate::config::TelaConfig;
use crate::search::{default_policy, solve_with, TelaResult};

/// One competitor in the portfolio race: a named search configuration.
#[derive(Debug, Clone)]
pub struct PortfolioVariant {
    /// Display name, e.g. `"max-size/fixed-step"`.
    pub name: String,
    /// The configuration this variant runs. Its portfolio fields
    /// (`threads`, `variants`) and `preflight_audit` are ignored: races
    /// never nest, and the driver preflights once for everyone.
    pub config: TelaConfig,
}

/// How one variant's worker ended: with a solver outcome, or by
/// panicking.
///
/// Panics are isolated per worker (`std::panic::catch_unwind` around
/// the variant body): a bug in one variant is reported here while the
/// race continues with the survivors, instead of unwinding through the
/// thread scope and aborting the whole solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VariantOutcome {
    /// The variant ran to completion and reported this outcome.
    Finished(SolveOutcome),
    /// The variant's worker panicked; the message is the panic payload
    /// (with location when the panic hook captured it).
    Panicked {
        /// The captured panic message.
        message: String,
    },
}

impl VariantOutcome {
    /// The solver outcome, unless the variant panicked.
    pub fn solve_outcome(&self) -> Option<&SolveOutcome> {
        match self {
            VariantOutcome::Finished(outcome) => Some(outcome),
            VariantOutcome::Panicked { .. } => None,
        }
    }

    /// Returns true if the variant's worker panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, VariantOutcome::Panicked { .. })
    }
}

/// Identity of the race's winning variant: which strategy×policy
/// configuration claimed the race, and on which worker thread.
///
/// Attached to [`TelaResult::winner`] (and, in compact numeric form, to
/// [`SolveStats::winner`](tela_model::SolveStats) as a
/// [`RaceWinner`], which survives [`SolveStats::absorb`] through the
/// resilience ladder and front-end aggregation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WinnerInfo {
    /// Index into the race's variant list.
    pub index: usize,
    /// The winning variant's display name, e.g. `"max-size/fixed-step"`.
    pub name: String,
    /// Worker-thread ordinal that ran the winning attempt (`0` for
    /// sequential races and the pre-race sprint).
    pub thread: u32,
}

/// What one variant did during the race.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// The variant's display name.
    pub name: String,
    /// The variant's own outcome. Losers typically report
    /// `BudgetExceeded` with [`SolveStats::cancelled`] set; a panicked
    /// variant reports the captured message instead.
    pub outcome: VariantOutcome,
    /// The variant's own search statistics (zeroed when the worker
    /// panicked — its counters died with it).
    pub stats: SolveStats,
}

/// Result of a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The winning variant's result (or an aggregate `BudgetExceeded` /
    /// `GaveUp` when nobody was decisive). `stats.elapsed` is the race's
    /// wall-clock time, not the winner's own.
    pub result: TelaResult,
    /// Index into the variant list of the claiming worker, if any.
    pub winner: Option<usize>,
    /// Per-variant reports, indexed like the variant list. `None` means
    /// the race was cancelled before that variant started.
    pub reports: Vec<Option<VariantReport>>,
    /// Round-by-round schedule of the adaptive scheduler, when it ran
    /// (a [`VariantRanker`](crate::adaptive::VariantRanker) was
    /// configured and no fault plan was active). `None` for blind races.
    pub adaptive: Option<AdaptiveReport>,
}

impl PortfolioResult {
    /// Number of variants whose workers panicked during the race.
    pub fn panicked(&self) -> usize {
        self.reports
            .iter()
            .flatten()
            .filter(|r| r.outcome.is_panicked())
            .count()
    }
}

// ---------------------------------------------------------------------
// Panic isolation.
//
// A scoped panic hook captures the panic message (payload plus source
// location) into a thread-local while a variant body runs, so the
// default hook stays silent for *expected* worker panics but still
// prints for everything else in the process. `Once` keeps hook
// installation idempotent across races and threads.

static INSTALL_HOOK: Once = Once::new();

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn install_capture_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CAPTURING.get() {
                LAST_PANIC.set(Some(info.to_string()));
            } else {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into the captured panic message.
///
/// Nesting-safe: the capture flag is saved and restored, so a
/// `catch_panics` inside another one behaves correctly.
pub(crate) fn catch_panics<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_capture_hook();
    let was_capturing = CAPTURING.replace(true);
    let result = catch_unwind(AssertUnwindSafe(f));
    CAPTURING.set(was_capturing);
    result.map_err(|payload| {
        LAST_PANIC
            .take()
            .unwrap_or_else(|| payload_message(payload.as_ref()))
    })
}

/// Fallback extraction straight from the payload, for panics that
/// bypassed the hook (e.g. raised with `resume_unwind`).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The default portfolio: the full TelaMalloc configuration (`base`)
/// first, then every §5.1 selection strategy crossed with both
/// backtrack policies (conflict-guided §5.4 vs. fixed-step) — nine
/// variants in total.
///
/// Variant 0 running `base` makes the sequential (`threads == 1`) race
/// behave exactly like [`solve`](crate::solve) whenever the base
/// configuration succeeds: later variants only run if earlier ones give
/// up within the budget.
pub fn default_variants(base: &TelaConfig) -> Vec<PortfolioVariant> {
    let mut variants = vec![PortfolioVariant {
        name: "telamalloc".to_string(),
        config: base.clone(),
    }];
    for strategy in SelectionStrategy::ALL {
        for (conflict_guided, policy_name) in [(true, "conflict-guided"), (false, "fixed-step")] {
            let mut config = TelaConfig::single_strategy(strategy);
            config.conflict_guided_backtracking = conflict_guided;
            // Skip cross entries that would search identically to an
            // already-listed variant (e.g. a `single_strategy` base):
            // a duplicate worker can only waste a thread, never win
            // anything the original would not.
            if variants
                .iter()
                .any(|v| same_search_behavior(&v.config, &config))
            {
                continue;
            }
            variants.push(PortfolioVariant {
                name: format!("{strategy}/{policy_name}"),
                config,
            });
        }
    }
    variants
}

/// True when two configurations would run bit-identical searches, i.e.
/// they agree on every field that steers the search tree. Driver-side
/// fields (`threads`, `variants`, `preflight_audit`, `tracer`, ladder
/// and adaptive settings, fault plans) are ignored: the race overrides
/// them per worker anyway (see [`worker_config`]).
fn same_search_behavior(a: &TelaConfig, b: &TelaConfig) -> bool {
    a.selection == b.selection
        && a.solver_guided_placement == b.solver_guided_placement
        && a.contention_grouping == b.contention_grouping
        && a.conflict_guided_backtracking == b.conflict_guided_backtracking
        && (a.conflict_guided_backtracking || a.fixed_backtrack_steps == b.fixed_backtrack_steps)
        && a.candidate_prepending == b.candidate_prepending
        && a.max_candidates_per_level == b.max_candidates_per_level
        && a.stuck_subtree_limit == b.stuck_subtree_limit
        && a.split_independent == b.split_independent
        && a.minimize_conflicts == b.minimize_conflicts
        && a.perturbation_seed == b.perturbation_seed
}

/// Worker-side view of a variant's configuration: the driver already
/// preflighted, and races never nest.
fn worker_config(variant: &PortfolioVariant) -> TelaConfig {
    let mut config = variant.config.clone();
    config.preflight_audit = false;
    config.threads = 1;
    config.variants = Vec::new();
    config
}

/// Runs one variant to completion under `budget` and reports.
fn run_variant(problem: &Problem, budget: &Budget, variant: &PortfolioVariant) -> TelaResult {
    let config = worker_config(variant);
    let mut policy = default_policy(&config);
    let mut observer = NullObserver;
    solve_with(problem, budget, &config, policy.as_mut(), &mut observer)
}

/// Runs one variant with panic isolation: a panicking worker yields the
/// captured message instead of unwinding through the race.
pub(crate) fn run_variant_isolated(
    problem: &Problem,
    budget: &Budget,
    variant: &PortfolioVariant,
) -> Result<TelaResult, String> {
    catch_panics(|| run_variant(problem, budget, variant))
}

/// The budget one variant runs under: the race budget, plus — with the
/// `fault-inject` feature and a configured plan targeting this variant —
/// a fresh fault injector. A fresh injector per run means a plan fires
/// in both the sprint and the race proper.
pub(crate) fn variant_budget(budget: &Budget, _config: &TelaConfig, _index: usize) -> Budget {
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = &_config.fault_plan {
        if plan.applies_to_variant(_index) {
            return budget
                .clone()
                .with_fault_injector(Arc::new(plan.injector()));
        }
    }
    budget.clone()
}

/// Remembers the longest committed prefix (and its conflict clique)
/// among non-decisive finishes, for best-effort degradation.
pub(crate) fn note_partial(
    best: &mut Option<(Vec<PlacedDecision>, Vec<BufferId>)>,
    result: &TelaResult,
) {
    if is_decisive(&result.outcome) {
        return;
    }
    let replace = match best {
        None => !result.partial.is_empty() || !result.first_conflict.is_empty(),
        Some((prefix, _)) => result.partial.len() > prefix.len(),
    };
    if replace {
        *best = Some((result.partial.clone(), result.first_conflict.clone()));
    }
}

/// A decisive outcome ends the race: a solution, or a proof that no
/// solution exists. `GaveUp` and `BudgetExceeded` are not proofs — some
/// other variant may still succeed.
pub(crate) fn is_decisive(outcome: &SolveOutcome) -> bool {
    matches!(outcome, SolveOutcome::Solved(_) | SolveOutcome::Infeasible)
}

/// Races `config.variants` (or [`default_variants`]) on
/// `config.threads` workers; first decisive outcome wins.
///
/// With `threads == 1` the variants run sequentially in order, so the
/// result is deterministic; with more threads the *winner* may vary
/// between runs, but every returned solution is a real solution and an
/// `Infeasible` result is always backed by a proof (the preflight
/// certificate or an exhaustive sub-search).
///
/// # Example
///
/// ```
/// use telamalloc::{solve_portfolio, TelaConfig};
/// use tela_model::{examples, Budget};
///
/// let config = TelaConfig {
///     threads: 4,
///     ..TelaConfig::default()
/// };
/// let problem = examples::figure1();
/// let race = solve_portfolio(&problem, &Budget::steps(100_000), &config);
/// let solution = race.result.outcome.solution().expect("figure1 is solvable");
/// assert!(solution.validate(&problem).is_ok());
/// ```
pub fn solve_portfolio(problem: &Problem, budget: &Budget, config: &TelaConfig) -> PortfolioResult {
    // tela-lint: allow(deterministic-clock, reason = "stats-only wall stamping of elapsed; never branches the search")
    let start = Instant::now();
    let tracer = &config.tracer;
    let span = if tracer.enabled() {
        tracer.count("portfolio.races", 1);
        tracer.begin(
            "portfolio",
            "race",
            vec![
                ("buffers".into(), problem.len().into()),
                ("threads".into(), config.threads.into()),
            ],
        )
    } else {
        tela_trace::SpanId::NULL
    };
    let mut race = run_portfolio(problem, budget, config);
    race.result.stats.elapsed = start.elapsed();
    // Surface caught worker panics in the aggregate diagnostics: the
    // payloads themselves are on the per-variant reports and in the
    // `portfolio.variant_panicked` trace events.
    race.result.stats.panics += race.panicked() as u64;
    if tracer.enabled() {
        let ran = race.reports.iter().flatten().count() as u64;
        tracer.count("portfolio.variants.run", ran);
        tracer.count("portfolio.variants.panicked", race.panicked() as u64);
        if let Some(info) = &race.result.winner {
            tracer.instant(
                "portfolio",
                "winner",
                vec![
                    ("index".into(), info.index.into()),
                    ("name".into(), info.name.clone().into()),
                    ("thread".into(), u64::from(info.thread).into()),
                ],
            );
        }
        tracer.end(
            span,
            "portfolio",
            "race",
            vec![
                ("outcome".into(), race.result.outcome.label().into()),
                (
                    "winner".into(),
                    race.winner.map_or(-1i64, |w| w as i64).into(),
                ),
            ],
        );
    }
    race
}

fn run_portfolio(problem: &Problem, budget: &Budget, config: &TelaConfig) -> PortfolioResult {
    // tela-lint: allow(deterministic-clock, reason = "stats-only wall stamping of elapsed; never branches the search")
    let start = Instant::now();
    if config.preflight_audit {
        match tela_audit::preflight(problem) {
            Verdict::ProvablyInfeasible(cert) => {
                crate::search::note_certificate(&config.tracer, &cert);
                return PortfolioResult {
                    result: TelaResult {
                        outcome: SolveOutcome::Infeasible,
                        stats: stamp(SolveStats::default(), start),
                        decisions: Vec::new(),
                        partial: Vec::new(),
                        first_conflict: Vec::new(),
                        certificate: Some(cert),
                        winner: None,
                    },
                    winner: None,
                    reports: Vec::new(),
                    adaptive: None,
                };
            }
            Verdict::TriviallyFeasible(solution) => {
                if config.tracer.enabled() {
                    config.tracer.count("audit.preflight.trivial", 1);
                    config.tracer.instant(
                        "audit",
                        "trivially_feasible",
                        vec![("buffers".into(), problem.len().into())],
                    );
                }
                let decisions = problem
                    .iter()
                    .map(|(id, _)| PlacedDecision {
                        block: id,
                        address: solution.address(id),
                    })
                    .collect();
                return PortfolioResult {
                    result: TelaResult {
                        outcome: SolveOutcome::Solved(solution),
                        stats: stamp(SolveStats::default(), start),
                        decisions,
                        partial: Vec::new(),
                        first_conflict: Vec::new(),
                        certificate: None,
                        winner: None,
                    },
                    winner: None,
                    reports: Vec::new(),
                    adaptive: None,
                };
            }
            Verdict::NeedsSearch(_) => {}
        }
    }
    let variants = if config.variants.is_empty() {
        default_variants(config)
    } else {
        config.variants.clone()
    };
    let threads = config.threads.max(1).min(variants.len());
    // The adaptive scheduler only engages when a ranker is configured
    // and no fault plan is active: under fault injection the portfolio
    // must degrade to the blind race bit-for-bit so the chaos and
    // trace-determinism suites exercise unchanged behavior.
    let mut race = if let Some(ranker) = adaptive_ranker(config) {
        crate::adaptive::race_adaptive(problem, budget, &variants, threads, config, ranker.as_ref())
    } else if threads == 1 {
        race_sequential(problem, budget, &variants, config)
    } else {
        race_parallel(problem, budget, &variants, threads, config)
    };
    race.result.stats.elapsed = start.elapsed();
    race
}

fn stamp(mut stats: SolveStats, start: Instant) -> SolveStats {
    stats.elapsed = start.elapsed();
    stats
}

/// The configured ranker, unless a fault plan forces the deterministic
/// blind-race fallback.
fn adaptive_ranker(config: &TelaConfig) -> Option<&Arc<dyn crate::adaptive::VariantRanker>> {
    #[cfg(feature = "fault-inject")]
    if config.fault_plan.is_some() {
        return None;
    }
    config.adaptive.ranker.as_ref()
}

/// `threads == 1`: run variants in order until one is decisive.
fn race_sequential(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
    config: &TelaConfig,
) -> PortfolioResult {
    let mut reports: Vec<Option<VariantReport>> = vec![None; variants.len()];
    let mut winner = None;
    let mut best_partial = None;
    let mut buf = config.tracer.buffer();
    for (index, variant) in variants.iter().enumerate() {
        let span = begin_variant(&mut buf, index, variant);
        let worker_budget = variant_budget(budget, config, index);
        match run_variant_isolated(problem, &worker_budget, variant) {
            Ok(result) => {
                end_variant(&mut buf, span, index, variant, Ok(&result), config);
                let decisive = is_decisive(&result.outcome);
                note_partial(&mut best_partial, &result);
                reports[index] = Some(VariantReport {
                    name: variant.name.clone(),
                    outcome: VariantOutcome::Finished(result.outcome.clone()),
                    stats: result.stats,
                });
                if decisive {
                    note_win(&mut buf, index, variant);
                    winner = Some((index, 0, result));
                    break;
                }
            }
            Err(message) => {
                end_variant(&mut buf, span, index, variant, Err(&message), config);
                reports[index] = Some(VariantReport {
                    name: variant.name.clone(),
                    outcome: VariantOutcome::Panicked { message },
                    stats: SolveStats::default(),
                });
            }
        }
    }
    drop(buf);
    finish_race(winner, variants, reports, best_partial)
}

// -----------------------------------------------------------------
// Variant lifecycle trace events. Workers record through a per-thread
// `TraceBuffer` so the shared sink lock is touched once per worker,
// not once per event; sequence numbers still come from the shared
// counter, so the merged timeline stays totally ordered.

pub(crate) fn begin_variant(
    buf: &mut tela_trace::TraceBuffer,
    index: usize,
    variant: &PortfolioVariant,
) -> tela_trace::SpanId {
    if !buf.enabled() {
        return tela_trace::SpanId::NULL;
    }
    buf.begin(
        "portfolio",
        "variant",
        vec![
            ("index".into(), index.into()),
            ("name".into(), variant.name.clone().into()),
        ],
    )
}

pub(crate) fn end_variant(
    buf: &mut tela_trace::TraceBuffer,
    span: tela_trace::SpanId,
    index: usize,
    variant: &PortfolioVariant,
    result: Result<&TelaResult, &String>,
    config: &TelaConfig,
) {
    if !buf.enabled() {
        return;
    }
    match result {
        Ok(result) => {
            // Wall times are skipped under the logical clock so that
            // deterministic traces stay byte-identical across runs.
            if config.tracer.clock() == Some(tela_trace::ClockMode::Wall) {
                config.tracer.observe(
                    "portfolio.variant.elapsed_us",
                    result.stats.elapsed.as_micros() as u64,
                );
            }
            buf.end(
                span,
                "portfolio",
                "variant",
                vec![
                    ("index".into(), index.into()),
                    ("outcome".into(), result.outcome.label().into()),
                    ("steps".into(), result.stats.steps.into()),
                ],
            );
        }
        Err(message) => {
            buf.instant(
                "portfolio",
                "variant_panicked",
                vec![
                    ("index".into(), index.into()),
                    ("name".into(), variant.name.clone().into()),
                    ("message".into(), message.clone().into()),
                ],
            );
            buf.end(
                span,
                "portfolio",
                "variant",
                vec![
                    ("index".into(), index.into()),
                    ("outcome".into(), "panicked".into()),
                ],
            );
        }
    }
}

pub(crate) fn note_win(
    buf: &mut tela_trace::TraceBuffer,
    index: usize,
    variant: &PortfolioVariant,
) {
    if buf.enabled() {
        buf.instant(
            "portfolio",
            "variant_won",
            vec![
                ("index".into(), index.into()),
                ("name".into(), variant.name.clone().into()),
            ],
        );
    }
}

/// Step cap for the sequential sprint that precedes a parallel race.
///
/// Most production instances are easy (§2.3): the base variant settles
/// them in well under a few thousand steps. Racing those from a cold
/// start taxes them with thread spawning and CPU time-slicing, so the
/// driver first sprints variant 0 alone at full single-thread speed and
/// only spawns the race for instances the sprint cannot settle. The
/// sprint's steps are the race's only duplicated work, bounded by this
/// cap (and by a quarter of the real budget, so tiny budgets keep most
/// of their steps for the race).
const SPRINT_STEPS: u64 = 4096;

fn sprint_budget(budget: &Budget) -> Budget {
    let cap = match budget.max_steps() {
        Some(cap) => (cap / 4).clamp(1, SPRINT_STEPS),
        None => SPRINT_STEPS,
    };
    budget.clone().with_max_steps(cap)
}

/// `threads > 1`: a short sequential sprint of the base variant, then
/// workers pull variant indices from a shared counter and race; the
/// first decisive finish claims the winner slot and raises the
/// cancellation flag for everyone else.
fn race_parallel(
    problem: &Problem,
    budget: &Budget,
    variants: &[PortfolioVariant],
    threads: usize,
    config: &TelaConfig,
) -> PortfolioResult {
    // The sprint runs isolated too: a deterministic early panic in
    // variant 0 must not abort the race before it starts. A panicked or
    // indecisive sprint is simply discarded — the race re-runs variant 0
    // with its full budget and reports whatever happens there.
    let sprint = run_variant_isolated(
        problem,
        &variant_budget(&sprint_budget(budget), config, 0),
        &variants[0],
    );
    if config.tracer.enabled() {
        let decisive = matches!(&sprint, Ok(r) if is_decisive(&r.outcome));
        config.tracer.count("portfolio.sprints", 1);
        config.tracer.instant(
            "portfolio",
            "sprint",
            vec![("decisive".into(), decisive.into())],
        );
    }
    if let Ok(sprint) = sprint {
        if is_decisive(&sprint.outcome) {
            note_win(&mut config.tracer.buffer(), 0, &variants[0]);
            let mut reports: Vec<Option<VariantReport>> = vec![None; variants.len()];
            reports[0] = Some(VariantReport {
                name: variants[0].name.clone(),
                outcome: VariantOutcome::Finished(sprint.outcome.clone()),
                stats: sprint.stats,
            });
            return finish_race(Some((0, 0, sprint)), variants, reports, None);
        }
    }
    let cancel = Arc::new(AtomicBool::new(false));
    let claimed = AtomicBool::new(false);
    let winner: Mutex<Option<(usize, u32, TelaResult)>> = Mutex::new(None);
    let best_partial: Mutex<Option<(Vec<PlacedDecision>, Vec<BufferId>)>> = Mutex::new(None);
    let reports: Vec<Mutex<Option<VariantReport>>> =
        variants.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let cancel = &cancel;
            let claimed = &claimed;
            let winner = &winner;
            let best_partial = &best_partial;
            let reports = &reports;
            let next = &next;
            scope.spawn(move || {
                let mut buf = config.tracer.buffer();
                loop {
                    if cancel.load(Ordering::Acquire) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(variant) = variants.get(index) else {
                        break;
                    };
                    let span = begin_variant(&mut buf, index, variant);
                    let worker_budget =
                        variant_budget(budget, config, index).with_cancel(Arc::clone(cancel));
                    let report = match run_variant_isolated(problem, &worker_budget, variant) {
                        Ok(result) => {
                            end_variant(&mut buf, span, index, variant, Ok(&result), config);
                            let decisive = is_decisive(&result.outcome);
                            let report = VariantReport {
                                name: variant.name.clone(),
                                outcome: VariantOutcome::Finished(result.outcome.clone()),
                                stats: result.stats,
                            };
                            if decisive {
                                // Claim is a single uncontended swap; only
                                // the first decisive finisher takes the
                                // mutex and flips the flag.
                                if !claimed.swap(true, Ordering::AcqRel) {
                                    note_win(&mut buf, index, variant);
                                    *lock_resilient(winner) = Some((index, worker as u32, result));
                                    cancel.store(true, Ordering::Release);
                                }
                            } else {
                                note_partial(&mut lock_resilient(best_partial), &result);
                            }
                            report
                        }
                        Err(message) => {
                            end_variant(&mut buf, span, index, variant, Err(&message), config);
                            VariantReport {
                                name: variant.name.clone(),
                                outcome: VariantOutcome::Panicked { message },
                                stats: SolveStats::default(),
                            }
                        }
                    };
                    *lock_resilient(&reports[index]) = Some(report);
                }
            });
        }
    });
    let winner = winner.into_inner().unwrap_or_else(PoisonError::into_inner);
    let best_partial = best_partial
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let reports = reports
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    finish_race(winner, variants, reports, best_partial)
}

/// Locks a mutex, recovering the data from a poisoned lock: race
/// bookkeeping stays usable even if some worker panicked outside the
/// isolated region while holding a slot.
pub(crate) fn lock_resilient<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Builds the final result: the winner's, or an aggregate over every
/// variant that ran when nobody was decisive. The aggregate carries the
/// longest committed prefix any variant reached, so the resilience
/// ladder can degrade to a best-effort answer.
pub(crate) fn finish_race(
    winner: Option<(usize, u32, TelaResult)>,
    variants: &[PortfolioVariant],
    reports: Vec<Option<VariantReport>>,
    best_partial: Option<(Vec<PlacedDecision>, Vec<BufferId>)>,
) -> PortfolioResult {
    match winner {
        Some((index, thread, mut result)) => {
            let name = variants
                .get(index)
                .map(|v| v.name.clone())
                .unwrap_or_default();
            result.winner = Some(WinnerInfo {
                index,
                name,
                thread,
            });
            result.stats.winner = Some(RaceWinner {
                variant: index as u32,
                thread,
            });
            PortfolioResult {
                result,
                winner: Some(index),
                reports,
                adaptive: None,
            }
        }
        None => {
            let mut stats = SolveStats::default();
            let mut budget_exceeded = false;
            for report in reports.iter().flatten() {
                stats.absorb(&report.stats);
                budget_exceeded |= matches!(
                    report.outcome,
                    VariantOutcome::Finished(SolveOutcome::BudgetExceeded)
                );
            }
            let outcome = if budget_exceeded {
                SolveOutcome::BudgetExceeded
            } else {
                SolveOutcome::GaveUp
            };
            let (partial, first_conflict) = best_partial.unwrap_or_default();
            // Aggregate stats absorbed per-variant stats, none of which
            // carry a race winner; make the "nobody won" contract
            // explicit on both levels.
            stats.winner = None;
            PortfolioResult {
                result: TelaResult {
                    outcome,
                    stats,
                    decisions: Vec::new(),
                    partial,
                    first_conflict,
                    certificate: None,
                    winner: None,
                },
                winner: None,
                reports,
                adaptive: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    #[test]
    fn default_portfolio_has_base_plus_strategy_policy_cross() {
        let base = TelaConfig::default();
        let variants = default_variants(&base);
        assert_eq!(variants.len(), 9);
        assert_eq!(variants[0].name, "telamalloc");
        assert_eq!(variants[0].config.selection, base.selection);
        // 4 strategies × 2 policies, all distinct names.
        let mut names: Vec<&str> = variants.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        assert!(variants
            .iter()
            .skip(1)
            .all(|v| v.config.selection.len() == 1));
    }

    #[test]
    fn default_portfolio_dedups_variants_matching_the_base() {
        // A single-strategy base searches identically to one of the
        // strategy×policy cross entries; that entry must not be listed
        // twice.
        let base = TelaConfig::single_strategy(SelectionStrategy::MaxSize);
        let variants = default_variants(&base);
        assert_eq!(variants.len(), 8);
        assert_eq!(variants[0].name, "telamalloc");
        assert!(
            !variants
                .iter()
                .skip(1)
                .any(|v| v.name == "max-size/fixed-step"),
            "the base IS max-size/fixed-step; the cross entry is a duplicate"
        );
        // The other policy for the same strategy still races.
        assert!(variants
            .iter()
            .any(|v| v.name == "max-size/conflict-guided"));
    }

    #[test]
    fn preflight_certificate_aborts_the_race() {
        let p = examples::infeasible();
        let config = TelaConfig {
            threads: 4,
            ..TelaConfig::default()
        };
        let race = solve_portfolio(&p, &Budget::unlimited(), &config);
        assert_eq!(race.result.outcome, SolveOutcome::Infeasible);
        // No worker ever started: the certificate settled the race.
        assert!(race.winner.is_none());
        assert!(race.reports.is_empty());
        assert!(race.result.certificate.expect("witness").verify(&p));
    }

    #[test]
    fn sequential_race_skips_later_variants_after_a_win() {
        let p = examples::figure1();
        let config = TelaConfig::default();
        let race = solve_portfolio(&p, &Budget::steps(100_000), &config);
        assert_eq!(race.winner, Some(0));
        assert!(race.reports[0].is_some());
        assert!(race.reports[1..].iter().all(Option::is_none));
    }
}
