//! The production allocation pipeline (paper §2.3, §5.6).
//!
//! The Pixel 6 compiler first tries the fast greedy heuristic; only when
//! that fails does it fall back to TelaMalloc (which replaced the ILP
//! stage). This module packages that pipeline behind one call.

use tela_audit::Certificate;
use tela_model::{Budget, Problem, SolveOutcome, SolveStats};

use crate::config::TelaConfig;
use crate::portfolio::solve_portfolio;
use crate::resilience::{EscalationLadder, LadderResult};
use crate::search::{solve, TelaResult};

/// Which stage of the pipeline produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The greedy heuristic solved it (the common, fast path).
    Heuristic,
    /// TelaMalloc's search solved it (or gave the final answer).
    TelaMalloc,
}

/// Result of running the full allocation pipeline.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The final outcome.
    pub outcome: SolveOutcome,
    /// Which stage answered.
    pub stage: Stage,
    /// Search statistics (zero for the heuristic stage).
    pub stats: SolveStats,
    /// When the instance was rejected as infeasible by the static
    /// preflight, the checkable witness explaining why.
    pub certificate: Option<Certificate>,
}

/// The production allocator front-end: greedy heuristic first, then the
/// TelaMalloc search (§5.6).
///
/// # Example
///
/// ```
/// use telamalloc::{Allocator, Stage};
/// use tela_model::{examples, Budget};
///
/// let allocator = Allocator::default();
/// // An easy instance is handled by the heuristic stage...
/// let easy = allocator.allocate(&examples::tiny(), &Budget::unlimited());
/// assert_eq!(easy.stage, Stage::Heuristic);
/// // ...while the tight Figure 1 instance needs the search.
/// let hard = allocator.allocate(&examples::figure1(), &Budget::unlimited());
/// assert_eq!(hard.stage, Stage::TelaMalloc);
/// assert!(hard.outcome.is_solved());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    config: TelaConfig,
}

impl Allocator {
    /// Creates a pipeline with an explicit TelaMalloc configuration.
    pub fn new(config: TelaConfig) -> Self {
        Allocator { config }
    }

    /// The TelaMalloc configuration in use.
    pub fn config(&self) -> &TelaConfig {
        &self.config
    }

    /// Runs the pipeline on `problem` within `budget` (the budget applies
    /// to the TelaMalloc stage; the heuristic is effectively free).
    ///
    /// `stats.elapsed` covers the whole pipeline, including the
    /// heuristic stage, on every return path.
    pub fn allocate(&self, problem: &Problem, budget: &Budget) -> PipelineResult {
        // tela-lint: allow(deterministic-clock, reason = "stats-only wall stamping of elapsed; never branches the search")
        let start = std::time::Instant::now();
        let heuristic = tela_heuristics::greedy::solve_traced(problem, &self.config.tracer);
        if let Some(solution) = heuristic.solution {
            let stats = SolveStats {
                elapsed: start.elapsed(),
                ..SolveStats::default()
            };
            return PipelineResult {
                outcome: SolveOutcome::Solved(solution),
                stage: Stage::Heuristic,
                stats,
                certificate: None,
            };
        }
        let TelaResult {
            outcome,
            mut stats,
            certificate,
            ..
        } = if self.config.threads > 1 {
            solve_portfolio(problem, budget, &self.config).result
        } else {
            solve(problem, budget, &self.config)
        };
        stats.elapsed = start.elapsed();
        PipelineResult {
            outcome,
            stage: Stage::TelaMalloc,
            stats,
            certificate,
        }
    }

    /// Runs the resilient pipeline: the escalation ladder
    /// ([`EscalationLadder`]) with panic-isolated workers and staged
    /// budget slices. Unlike [`Allocator::allocate`], the outcome is
    /// always `Solved`, `Infeasible`, or `BestEffort` — never a bare
    /// `GaveUp`/`BudgetExceeded` and never a panic for a well-formed
    /// problem.
    pub fn allocate_resilient(&self, problem: &Problem, budget: &Budget) -> LadderResult {
        EscalationLadder::new(self.config.clone()).solve(problem, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    #[test]
    fn heuristic_handles_easy_case() {
        let r = Allocator::default().allocate(&examples::tiny(), &Budget::unlimited());
        assert_eq!(r.stage, Stage::Heuristic);
        assert!(r.outcome.is_solved());
        assert_eq!(r.stats.steps, 0);
    }

    #[test]
    fn search_handles_tight_case() {
        let p = examples::figure1();
        let r = Allocator::default().allocate(&p, &Budget::steps(500_000));
        assert_eq!(r.stage, Stage::TelaMalloc);
        assert!(r.outcome.solution().unwrap().validate(&p).is_ok());
        assert!(r.stats.steps > 0);
    }

    #[test]
    fn infeasible_reported_by_search_stage() {
        let p = examples::infeasible();
        let r = Allocator::default().allocate(&p, &Budget::unlimited());
        assert_eq!(r.stage, Stage::TelaMalloc);
        assert_eq!(r.outcome, SolveOutcome::Infeasible);
        let cert = r.certificate.expect("preflight provides a witness");
        assert!(cert.verify(&p));
    }

    #[test]
    fn resilient_pipeline_never_leaves_the_ladder_outcomes() {
        use tela_model::SolveOutcome;
        for (p, budget) in [
            (examples::tiny(), Budget::steps(100_000)),
            (examples::figure1(), Budget::steps(100_000)),
            (examples::infeasible(), Budget::steps(100_000)),
            (examples::figure1(), Budget::steps(4)), // starved
        ] {
            let r = Allocator::default().allocate_resilient(&p, &budget);
            match &r.outcome {
                SolveOutcome::Solved(s) => assert!(s.validate(&r.problem).is_ok()),
                SolveOutcome::Infeasible => assert!(r.certificate.is_some()),
                SolveOutcome::BestEffort(b) => {
                    assert!(b.partial.validate(&r.problem).is_ok());
                }
                other => panic!("ladder leaked {other:?}"),
            }
        }
    }

    #[test]
    fn solutions_from_either_stage_validate() {
        for p in [examples::tiny(), examples::figure1(), examples::aligned()] {
            let r = Allocator::default().allocate(&p, &Budget::steps(500_000));
            if let Some(s) = r.outcome.solution() {
                assert!(s.validate(&p).is_ok());
            }
        }
    }
}
