//! TelaMalloc: hybrid heuristic × constraint-solver memory allocation
//! for ML accelerators — the core of the ASPLOS 2023 paper reproduction.
//!
//! The allocator solves the on-chip memory allocation problem: choose a
//! base address for every buffer of a static dataflow graph such that
//! time-overlapping buffers never overlap in space and everything fits
//! in the device memory. TelaMalloc's contribution is how it explores
//! this NP-hard search space (§4):
//!
//! - domain-specific heuristics pick *which* block to place next
//!   (longest-lifetime / largest-size / largest-area, §5.1), restricted
//!   to the current contention phase (§5.3);
//! - the CP solver (the `tela-cp` crate) answers *where* it can go —
//!   the lowest feasible address (§5.2) — and proves early when a
//!   placement made the rest unsolvable;
//! - backtracking is guided by the solver's conflict explanations and,
//!   optionally, a learned model (§5.4, §6; see the `tela-learned`
//!   crate).
//!
//! # Quick start
//!
//! ```
//! use telamalloc::{Allocator, TelaConfig};
//! use tela_model::{examples, Budget};
//!
//! let allocator = Allocator::new(TelaConfig::default());
//! let problem = examples::figure1();
//! let result = allocator.allocate(&problem, &Budget::steps(100_000));
//! let solution = result.outcome.solution().expect("figure1 is solvable");
//! assert!(solution.validate(&problem).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod backtrack;
mod config;
mod frontend;
mod portfolio;
mod resilience;
mod search;

pub use adaptive::{AdaptiveConfig, AdaptiveReport, RoundReport, RunReport, VariantRanker};
pub use backtrack::{
    BacktrackChoice, BacktrackContext, BacktrackPolicy, BacktrackTarget, ConflictGuidedPolicy,
    FixedStepPolicy, NullObserver, PlacedDecision, SearchObserver, StepContext, TargetFeatures,
};
pub use config::TelaConfig;
pub use frontend::{Allocator, PipelineResult, Stage};
pub use portfolio::{
    default_variants, solve_portfolio, PortfolioResult, PortfolioVariant, VariantOutcome,
    VariantReport, WinnerInfo,
};
pub use resilience::{
    EscalationLadder, LadderConfig, LadderResult, NoSpill, SpillHook, StageReport,
};
pub use search::{solve, solve_with, TelaResult};
// Re-exported so pipeline consumers can inspect infeasibility witnesses
// without depending on tela-audit directly.
pub use tela_audit::{Certificate, Verdict};
