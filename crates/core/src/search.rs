//! The TelaMalloc search engine (paper §4, §5).
//!
//! The engine walks a search tree whose nodes are *decision points*: at
//! each point a candidate block is chosen (by the §5.1 selection
//! heuristics, restricted to the current contention phase per §5.3) and
//! placed at the CP solver's lowest feasible position (§5.2). The solver
//! propagates after every placement; an immediate conflict is a *minor
//! backtrack* (try the next candidate), an exhausted candidate queue is a
//! *major backtrack* (jump up the tree, guided by the solver's conflict
//! explanation and the configured [`BacktrackPolicy`], §5.4/§6).

use std::collections::VecDeque;
use std::time::Instant;

use tela_audit::{Certificate, Verdict};
use tela_cp::{Conflict, ConflictSeed, CpSolver};
use tela_heuristics::SelectionStrategy;
use tela_model::{Address, Budget, BufferId, PhasePartition, Problem, SolveOutcome, SolveStats};

use crate::backtrack::{
    BacktrackChoice, BacktrackContext, BacktrackPolicy, BacktrackTarget, ConflictGuidedPolicy,
    FixedStepPolicy, NullObserver, PlacedDecision, SearchObserver, StepContext, TargetFeatures,
};
use crate::config::TelaConfig;

/// Result of one TelaMalloc run.
#[derive(Debug, Clone)]
pub struct TelaResult {
    /// Solved, gave up (search exhausted — not a proof of
    /// infeasibility), infeasible (proven before search), or out of
    /// budget.
    pub outcome: SolveOutcome,
    /// Steps and backtrack counts (steps = placement attempts, matching
    /// the paper's Figure 14 metric).
    pub stats: SolveStats,
    /// The successful decision path (placement order), empty unless
    /// solved.
    pub decisions: Vec<PlacedDecision>,
    /// The committed placement prefix at the moment the search stopped
    /// (empty when solved — `decisions` covers that case). The
    /// resilience ladder turns this into a validated
    /// [`tela_model::PartialSolution`] when degrading to
    /// [`SolveOutcome::BestEffort`].
    pub partial: Vec<PlacedDecision>,
    /// The buffers involved in the first placement conflict the search
    /// hit (subject plus culprits); empty if no conflict occurred.
    pub first_conflict: Vec<BufferId>,
    /// When the preflight audit proved infeasibility, the independently
    /// checkable witness (see [`tela_audit::Certificate::verify`]).
    pub certificate: Option<Certificate>,
    /// The portfolio variant that produced this result, when it came out
    /// of a race ([`solve_portfolio`](crate::solve_portfolio) fills this
    /// on the winning result; plain [`solve`] runs leave it `None`).
    pub winner: Option<crate::portfolio::WinnerInfo>,
}

/// Solves `problem` with the default configuration and backtrack policy.
///
/// # Example
///
/// ```
/// use telamalloc::{solve, TelaConfig};
/// use tela_model::{examples, Budget};
///
/// let problem = examples::figure1();
/// let result = solve(&problem, &Budget::steps(100_000), &TelaConfig::default());
/// let solution = result.outcome.solution().expect("figure1 is solvable");
/// assert!(solution.validate(&problem).is_ok());
/// ```
pub fn solve(problem: &Problem, budget: &Budget, config: &TelaConfig) -> TelaResult {
    let mut policy = default_policy(config);
    let mut observer = NullObserver;
    solve_with(problem, budget, config, policy.as_mut(), &mut observer)
}

pub(crate) fn default_policy(config: &TelaConfig) -> Box<dyn BacktrackPolicy> {
    if config.conflict_guided_backtracking {
        Box::new(ConflictGuidedPolicy)
    } else {
        Box::new(FixedStepPolicy(config.fixed_backtrack_steps))
    }
}

/// Solves `problem` with an explicit backtrack policy and observer
/// (used by the learned policy and the imitation-learning data
/// collector).
pub fn solve_with(
    problem: &Problem,
    budget: &Budget,
    config: &TelaConfig,
    policy: &mut dyn BacktrackPolicy,
    observer: &mut dyn SearchObserver,
) -> TelaResult {
    let tracer = config.tracer.clone();
    let span = if tracer.enabled() {
        tracer.begin(
            "search",
            "solve",
            vec![
                ("buffers".into(), problem.len().into()),
                ("capacity".into(), problem.capacity().into()),
            ],
        )
    } else {
        tela_trace::SpanId::NULL
    };
    let result = solve_with_inner(problem, budget, config, policy, observer);
    if tracer.enabled() {
        tracer.count("search.solves", 1);
        tracer.count("search.steps", result.stats.steps);
        tracer.count("search.backtracks.minor", result.stats.minor_backtracks);
        tracer.count("search.backtracks.major", result.stats.major_backtracks);
        // Work counters ride on the end event too (not just the
        // registry) so rollups can attribute them to this span.
        tracer.end(
            span,
            "search",
            "solve",
            vec![
                ("outcome".into(), result.outcome.label().into()),
                ("steps".into(), result.stats.steps.into()),
                (
                    "backtracks_minor".into(),
                    result.stats.minor_backtracks.into(),
                ),
                (
                    "backtracks_major".into(),
                    result.stats.major_backtracks.into(),
                ),
            ],
        );
    }
    result
}

fn solve_with_inner(
    problem: &Problem,
    budget: &Budget,
    config: &TelaConfig,
    policy: &mut dyn BacktrackPolicy,
    observer: &mut dyn SearchObserver,
) -> TelaResult {
    // tela-lint: allow(deterministic-clock, reason = "stats-only wall stamping of elapsed; never branches the search")
    let start = Instant::now();
    if config.preflight_audit {
        match tela_audit::preflight(problem) {
            Verdict::ProvablyInfeasible(cert) => {
                note_certificate(&config.tracer, &cert);
                let stats = SolveStats {
                    elapsed: start.elapsed(),
                    ..SolveStats::default()
                };
                return TelaResult {
                    outcome: SolveOutcome::Infeasible,
                    stats,
                    decisions: Vec::new(),
                    partial: Vec::new(),
                    first_conflict: Vec::new(),
                    certificate: Some(cert),
                    winner: None,
                };
            }
            Verdict::TriviallyFeasible(solution) => {
                if config.tracer.enabled() {
                    config.tracer.count("audit.preflight.trivial", 1);
                    config.tracer.instant(
                        "audit",
                        "trivially_feasible",
                        vec![("buffers".into(), problem.len().into())],
                    );
                }
                let decisions = problem
                    .iter()
                    .map(|(id, _)| PlacedDecision {
                        block: id,
                        address: solution.address(id),
                    })
                    .collect();
                let stats = SolveStats {
                    elapsed: start.elapsed(),
                    ..SolveStats::default()
                };
                return TelaResult {
                    outcome: SolveOutcome::Solved(solution),
                    stats,
                    decisions,
                    partial: Vec::new(),
                    first_conflict: Vec::new(),
                    certificate: None,
                    winner: None,
                };
            }
            Verdict::NeedsSearch(_) => {
                config.tracer.count("audit.preflight.needs_search", 1);
            }
        }
    }
    if config.split_independent {
        let groups = tela_model::split_independent(problem);
        if groups.len() > 1 {
            return solve_split(problem, budget, config, policy, observer, groups, start);
        }
    }
    let mut result = Engine::run(problem, budget, config, policy, observer);
    result.stats.elapsed = start.elapsed();
    result
}

/// Records a preflight infeasibility certificate into the trace, so a
/// solve that never searches still yields an explanatory timeline: the
/// certificate kind plus its human-readable argument.
pub(crate) fn note_certificate(tracer: &tela_trace::Tracer, cert: &Certificate) {
    if tracer.enabled() {
        tracer.count("audit.preflight.infeasible", 1);
        tracer.count(&format!("audit.certificate.{}", cert.kind_name()), 1);
        tracer.instant(
            "audit",
            "certificate",
            vec![
                ("kind".into(), cert.kind_name().into()),
                ("detail".into(), cert.to_string().into()),
            ],
        );
    }
}

/// Solves each time-disjoint group independently and merges (§5.3).
#[allow(clippy::too_many_arguments)]
fn solve_split(
    problem: &Problem,
    budget: &Budget,
    config: &TelaConfig,
    policy: &mut dyn BacktrackPolicy,
    observer: &mut dyn SearchObserver,
    groups: Vec<Vec<BufferId>>,
    start: Instant,
) -> TelaResult {
    let mut stats = SolveStats::default();
    let mut addresses = vec![0u64; problem.len()];
    let mut decisions = Vec::new();
    for group in groups {
        let buffers = group.iter().map(|&id| *problem.buffer(id)).collect();
        // Invariant: a subset of a valid problem's buffers under the same
        // capacity passes every `Problem::new` check (each buffer already
        // validated, per-buffer size/align bounds unchanged, cumulative
        // extent only shrinks), so this cannot fail for a well-formed
        // input problem.
        let sub = Problem::new(buffers, problem.capacity())
            .expect("sub-problem inherits a valid capacity");
        let sub_result = Engine::run(&sub, budget, config, policy, observer);
        stats.absorb(&sub_result.stats);
        match sub_result.outcome {
            SolveOutcome::Solved(sub_solution) => {
                for (sub_idx, &orig) in group.iter().enumerate() {
                    let addr = sub_solution.address(BufferId::new(sub_idx));
                    addresses[orig.index()] = addr;
                }
                decisions.extend(sub_result.decisions.iter().map(|d| PlacedDecision {
                    block: group[d.block.index()],
                    address: d.address,
                }));
            }
            other => {
                stats.elapsed = start.elapsed();
                // The partial prefix is everything committed so far:
                // fully solved earlier groups plus the failing group's
                // own prefix, remapped to original buffer ids.
                let mut partial = decisions;
                partial.extend(sub_result.partial.iter().map(|d| PlacedDecision {
                    block: group[d.block.index()],
                    address: d.address,
                }));
                let first_conflict = sub_result
                    .first_conflict
                    .iter()
                    .map(|b| group[b.index()])
                    .collect();
                return TelaResult {
                    outcome: other,
                    stats,
                    decisions: Vec::new(),
                    partial,
                    first_conflict,
                    certificate: None,
                    winner: None,
                };
            }
        }
    }
    let solution = tela_model::Solution::new(addresses);
    debug_assert!(solution.validate(problem).is_ok());
    stats.elapsed = start.elapsed();
    TelaResult {
        outcome: SolveOutcome::Solved(solution),
        stats,
        decisions,
        partial: Vec::new(),
        first_conflict: Vec::new(),
        certificate: None,
        winner: None,
    }
}

/// One decision point of the search tree.
#[derive(Debug)]
struct Frame {
    /// Candidates not yet tried (front is next).
    queue: VecDeque<BufferId>,
    queue_built: bool,
    /// Candidates already tried (and failed, unless this frame is
    /// committed).
    tried: Vec<BufferId>,
    /// The successful placement made at this point, if committed.
    placed: Option<(BufferId, Address)>,
    /// Contention phase of the block placed by the *previous* decision
    /// (the phase context for candidate generation).
    context_phase: Option<usize>,
    /// How often the search backtracked to this point.
    backtracks_to: u64,
    /// Global backtrack count when this point was (last) opened; the
    /// subtree backtrack counter is the difference to the current count.
    opened_at_backtracks: u64,
    /// Most recent conflict seen at this point, with the candidate
    /// placement that triggered it. The seed is `None` when the
    /// candidate had no feasible position at all (empty domain); the
    /// full explanation is materialized only if a major backtrack
    /// actually reads it.
    last_conflict: Option<(Option<ConflictSeed>, BufferId, Address)>,
}

impl Frame {
    fn new(context_phase: Option<usize>, opened_at_backtracks: u64) -> Self {
        Frame {
            queue: VecDeque::new(),
            queue_built: false,
            tried: Vec::new(),
            placed: None,
            context_phase,
            backtracks_to: 0,
            opened_at_backtracks,
            last_conflict: None,
        }
    }

    /// Clears a recycled frame for a fresh decision point, keeping the
    /// queue/tried allocations for reuse.
    fn reset(&mut self, context_phase: Option<usize>, opened_at_backtracks: u64) {
        self.queue.clear();
        self.queue_built = false;
        self.tried.clear();
        self.placed = None;
        self.context_phase = context_phase;
        self.backtracks_to = 0;
        self.opened_at_backtracks = opened_at_backtracks;
        self.last_conflict = None;
    }
}

/// Reusable engine scratch. Every buffer here is cleared and refilled in
/// place, so steady-state queue builds, backtracks, and frame turnover
/// run without heap allocation (the conflict explanation itself is the
/// one owned value still produced per minor backtrack).
#[derive(Default)]
struct EngineScratch {
    /// Dedup marker per buffer for queue building.
    seen: Vec<bool>,
    /// Flat candidate pool for the uncapped fallback queue.
    pool: Vec<BufferId>,
    /// Per-phase candidate pools (a single pool when phases are off).
    pools: Vec<Vec<BufferId>>,
    /// Pool visit order, context phase first; indexes into `pools`.
    pool_order: Vec<usize>,
    /// Placement level per buffer for backtrack-target construction.
    level_of: Vec<usize>,
    /// Committed-path buffer for backtrack contexts.
    path: Vec<PlacedDecision>,
    /// Retired frames kept so their queue/tried capacity is reused.
    frames: Vec<Frame>,
}

struct Engine<'a> {
    problem: &'a Problem,
    config: &'a TelaConfig,
    solver: CpSolver,
    phases: Option<PhasePartition>,
    buffer_contention: Vec<u64>,
    culprit_counts: Vec<u64>,
    /// Per-selection-strategy rank arrays (`rank[id]` = position in the
    /// strategy's total order, best first). Lifetime/size/area keys are
    /// problem-static, so these are computed once and queue builds
    /// reduce to rank lookups; `None` for the dynamic
    /// [`SelectionStrategy::LowestPosition`].
    selection_ranks: Vec<Option<Vec<u32>>>,
    /// All buffers pre-sorted by the primary strategy's static order.
    /// When present, pools are filled by walking this order, which
    /// leaves them sorted without any per-level sort.
    primary_order: Option<Vec<BufferId>>,
    frames: Vec<Frame>,
    current: Frame,
    global_backtracks: u64,
    stats: SolveStats,
    /// Subject plus culprits of the first conflict ever seen, kept for
    /// best-effort diagnostics.
    first_conflict: Option<Vec<BufferId>>,
    scratch: EngineScratch,
}

impl<'a> Engine<'a> {
    fn run(
        problem: &'a Problem,
        budget: &Budget,
        config: &'a TelaConfig,
        policy: &mut dyn BacktrackPolicy,
        observer: &mut dyn SearchObserver,
    ) -> TelaResult {
        let mut solver = match CpSolver::new(problem) {
            Ok(s) => s,
            Err(_) => {
                return TelaResult {
                    outcome: SolveOutcome::Infeasible,
                    stats: SolveStats::default(),
                    decisions: Vec::new(),
                    partial: Vec::new(),
                    first_conflict: Vec::new(),
                    certificate: None,
                    winner: None,
                }
            }
        };
        solver.set_tracer(config.tracer.clone());
        let phases = config
            .contention_grouping
            .then(|| PhasePartition::compute(problem));
        let contention = problem.contention();
        let buffer_contention = problem
            .buffers()
            .iter()
            .map(|b| {
                (b.start()..b.end())
                    .map(|t| contention.at(t))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let seed = config.perturbation_seed;
        let selection_ranks: Vec<Option<Vec<u32>>> = config
            .selection
            .iter()
            .map(|&strategy| {
                if strategy == SelectionStrategy::LowestPosition {
                    return None;
                }
                let mut ids: Vec<u32> = (0..problem.len() as u32).collect();
                if seed == 0 {
                    ids.sort_unstable_by_key(|&i| {
                        (
                            std::cmp::Reverse(strategy.key(problem, BufferId::new(i as usize))),
                            i,
                        )
                    });
                } else {
                    // Perturbed restart: jitter each key by a hash of
                    // `(seed, id)` and break remaining ties by a seeded
                    // token, so the ordering genuinely differs per seed
                    // (see `tela_heuristics::perturb`).
                    ids.sort_unstable_by_key(|&i| {
                        (
                            std::cmp::Reverse(tela_heuristics::perturb::jitter_key(
                                strategy.key(problem, BufferId::new(i as usize)),
                                u64::from(i),
                                seed,
                            )),
                            tela_heuristics::perturb::tiebreak(u64::from(i), seed),
                            i,
                        )
                    });
                }
                let mut rank = vec![0u32; problem.len()];
                for (pos, &i) in ids.iter().enumerate() {
                    rank[i as usize] = pos as u32;
                }
                Some(rank)
            })
            .collect();
        let primary_order = selection_ranks.first().and_then(|ranks| {
            let rank = ranks.as_ref()?;
            let mut ids: Vec<BufferId> = (0..problem.len()).map(BufferId::new).collect();
            ids.sort_unstable_by_key(|id| rank[id.index()]);
            Some(ids)
        });
        let mut engine = Engine {
            problem,
            config,
            solver,
            phases,
            buffer_contention,
            culprit_counts: vec![0; problem.len()],
            selection_ranks,
            primary_order,
            frames: Vec::new(),
            current: Frame::new(None, 0),
            global_backtracks: 0,
            stats: SolveStats::default(),
            first_conflict: None,
            scratch: EngineScratch::default(),
        };
        let mut result = engine.search(budget, policy, observer);
        result.stats.propagations = engine.solver.propagations();
        // Solver counters are sampled once per run, never incremented
        // per propagation: the hot loop stays metric-free.
        if config.tracer.enabled() {
            config
                .tracer
                .count("cp.propagations", engine.solver.propagations());
            config
                .tracer
                .count("cp.min_pos.queries", engine.solver.min_pos_queries());
        }
        result
    }

    fn search(
        &mut self,
        budget: &Budget,
        policy: &mut dyn BacktrackPolicy,
        observer: &mut dyn SearchObserver,
    ) -> TelaResult {
        loop {
            if budget.exhausted(self.stats.steps) {
                // Distinguish losing a portfolio race from running dry on
                // steps or time, so reports can tell the two apart.
                self.stats.cancelled = budget.cancelled();
                return self.finish(SolveOutcome::BudgetExceeded);
            }
            if let Some(solution) = self.solver.solution() {
                let path = self.path();
                observer.on_solved(&path);
                return TelaResult {
                    outcome: SolveOutcome::Solved(solution),
                    stats: self.stats,
                    decisions: path,
                    partial: Vec::new(),
                    first_conflict: Vec::new(),
                    certificate: None,
                    winner: None,
                };
            }
            if !self.current.queue_built {
                let step_ctx = StepContext {
                    level: self.frames.len(),
                    unplaced: self.problem.len() - self.solver.fixed_count(),
                    total_buffers: self.problem.len(),
                    subtree_backtracks: self.global_backtracks - self.current.opened_at_backtracks,
                    total_backtracks: self.global_backtracks,
                };
                if policy.expand_candidates(&step_ctx) {
                    self.fill_full_queue()
                } else {
                    self.build_queue()
                }
                self.current.queue_built = true;
            }
            match self.current.queue.pop_front() {
                Some(block) => self.try_candidate(block),
                None => {
                    if self.frames.is_empty() {
                        return self.finish(SolveOutcome::GaveUp);
                    }
                    self.major_backtrack(policy, observer);
                }
            }
        }
    }

    fn finish(&self, outcome: SolveOutcome) -> TelaResult {
        TelaResult {
            outcome,
            stats: self.stats,
            decisions: Vec::new(),
            partial: self.path(),
            first_conflict: self.first_conflict.clone().unwrap_or_default(),
            certificate: None,
            winner: None,
        }
    }

    fn path(&self) -> Vec<PlacedDecision> {
        let mut out = Vec::with_capacity(self.frames.len());
        self.fill_path(&mut out);
        out
    }

    fn fill_path(&self, out: &mut Vec<PlacedDecision>) {
        out.clear();
        out.extend(self.frames.iter().map(|f| {
            // Invariant: a frame is only pushed onto `frames` after
            // `try_candidate` sets `placed` (the swap in the Ok arm),
            // and backtracking pops before clearing it.
            let (block, address) = f.placed.expect("committed frame has a placement");
            PlacedDecision { block, address }
        }));
    }

    fn try_candidate(&mut self, block: BufferId) {
        self.current.tried.push(block);
        self.stats.steps += 1;
        let position = self.position_for(block);
        let result = match position {
            Some(pos) => self
                .solver
                .assign_deferred(block, pos)
                .map(|()| pos)
                .map_err(Some),
            None => Err(None),
        };
        match result {
            Ok(pos) => {
                self.current.placed = Some((block, pos));
                let phase = self.phases.as_ref().map(|p| p.phase_of(block));
                let next = self.recycled_frame(phase, self.global_backtracks);
                self.frames.push(std::mem::replace(&mut self.current, next));
            }
            Err(seed) => {
                self.stats.minor_backtracks += 1;
                self.global_backtracks += 1;
                if self.first_conflict.is_none() {
                    let mut clique = vec![block];
                    if let Some(seed) = &seed {
                        clique.extend(self.solver.explain(seed).culprits);
                    }
                    self.first_conflict = Some(clique);
                }
                self.current.last_conflict = Some((seed, block, position.unwrap_or(0)));
            }
        }
    }

    /// Placement position for a candidate: the solver's lowest feasible
    /// address (§5.2) or, in the ablation mode, the top of the skyline of
    /// placed overlapping blocks (Figure 8a).
    fn position_for(&self, block: BufferId) -> Option<Address> {
        if self.config.solver_guided_placement {
            let d = self.solver.domain(block);
            if d.is_empty() {
                None
            } else {
                // At the propagation fixpoint the domain's lower bound is
                // feasible w.r.t. all placed blocks.
                Some(d.lo())
            }
        } else {
            let b = self.problem.buffer(block);
            let mut top = 0;
            for neighbor in self.solver.model().neighbors(block) {
                if let Some(addr) = self.solver.assignment(neighbor) {
                    top = top.max(addr + self.problem.buffer(neighbor).size());
                }
            }
            b.align_up(top)
        }
    }

    /// A frame for the next decision point, reusing a retired frame's
    /// buffers when one is available.
    fn recycled_frame(&mut self, context_phase: Option<usize>, opened_at_backtracks: u64) -> Frame {
        let mut f = self
            .scratch
            .frames
            .pop()
            .unwrap_or_else(|| Frame::new(None, 0));
        f.reset(context_phase, opened_at_backtracks);
        f
    }

    /// The uncapped fallback queue: every unplaced block, ordered by the
    /// primary strategy (used by the §8.3 expansion hook and the §6.5
    /// stay-and-try-all fallback). Fills `self.current.queue` in place.
    fn fill_full_queue(&mut self) {
        let mut pool = std::mem::take(&mut self.scratch.pool);
        pool.clear();
        self.for_each_unfixed(|id| pool.push(id));
        self.order_pool(&mut pool);
        let mut out = std::mem::take(&mut self.current.queue);
        out.clear();
        out.extend(pool.iter().copied());
        self.current.queue = out;
        self.scratch.pool = pool;
    }

    /// Visits every unplaced buffer — in the primary strategy's static
    /// order when one exists (so collected pools come out pre-sorted),
    /// in id order otherwise.
    fn for_each_unfixed(&self, mut f: impl FnMut(BufferId)) {
        match &self.primary_order {
            Some(order) => {
                for &id in order {
                    if !self.solver.is_fixed(id) {
                        f(id);
                    }
                }
            }
            None => self.solver.unfixed().for_each(f),
        }
    }

    /// Builds the candidate queue for the current decision point:
    /// strategy picks from the context phase first, then from the other
    /// phases in priority order (§5.1, §5.3), capped per §5.4. Fills
    /// `self.current.queue` in place; all intermediate storage lives in
    /// the engine scratch, so steady-state queue builds never allocate.
    fn build_queue(&mut self) {
        let cap = self.config.max_candidates_per_level.max(1);
        let mut out = std::mem::take(&mut self.current.queue);
        out.clear();
        let mut seen = std::mem::take(&mut self.scratch.seen);
        seen.clear();
        seen.resize(self.problem.len(), false);
        let mut pools = std::mem::take(&mut self.scratch.pools);
        let mut order = std::mem::take(&mut self.scratch.pool_order);
        self.fill_pools(&mut pools, &mut order);
        let push = |out: &mut VecDeque<BufferId>, seen: &mut Vec<bool>, id: BufferId| {
            if !seen[id.index()] && out.len() < cap {
                seen[id.index()] = true;
                out.push_back(id);
            }
        };

        for &pi in &order {
            // `fill_pools` only emits in-bounds pool indices.
            let Some(pool) = pools.get_mut(pi) else {
                continue;
            };
            if pool.is_empty() || out.len() >= cap {
                continue;
            }
            for (si, strategy) in self.config.selection.iter().enumerate() {
                if let Some(pick) = self.pick(si, *strategy, pool) {
                    push(&mut out, &mut seen, pick);
                }
            }
            self.order_pool(pool);
            for &queued in pool.iter() {
                push(&mut out, &mut seen, queued);
            }
        }
        self.current.queue = out;
        self.scratch.seen = seen;
        self.scratch.pools = pools;
        self.scratch.pool_order = order;
    }

    /// Groups the unplaced blocks into phase pools and records the visit
    /// order (context phase first). Pool storage is reused across calls.
    fn fill_pools(&self, pools: &mut Vec<Vec<BufferId>>, order: &mut Vec<usize>) {
        order.clear();
        let Some(phases) = &self.phases else {
            if pools.is_empty() {
                pools.push(Vec::new());
            }
            pools[0].clear();
            let pool = &mut pools[0];
            self.for_each_unfixed(|id| pool.push(id));
            order.push(0);
            return;
        };
        if pools.len() < phases.len() {
            pools.resize_with(phases.len(), Vec::new);
        }
        for pool in pools.iter_mut() {
            pool.clear();
        }
        self.for_each_unfixed(|id| {
            // `phase_of` is a total map over the problem's buffers.
            if let Some(pool) = pools.get_mut(phases.phase_of(id)) {
                pool.push(id);
            }
        });
        order.extend(0..phases.len());
        let context = self
            .current
            .context_phase
            .or_else(|| self.frames.last().and_then(|f| f.context_phase));
        if let Some(ctx) = context {
            order.retain(|&p| p != ctx);
            order.insert(0, ctx);
        }
    }

    fn pick(&self, si: usize, strategy: SelectionStrategy, pool: &[BufferId]) -> Option<BufferId> {
        if let Some(Some(rank)) = self.selection_ranks.get(si) {
            // Static strategy: the precomputed rank is its exact
            // (key-descending, id-ascending) order.
            return pool.iter().copied().min_by_key(|id| rank[id.index()]);
        }
        match strategy {
            SelectionStrategy::LowestPosition => pool
                .iter()
                .copied()
                .min_by_key(|&id| (self.solver.domain(id).lo(), self.position_tiebreak(id))),
            _ => strategy.pick(self.problem, pool.iter().copied()),
        }
    }

    /// Tiebreak among equal lowest positions: plain id order normally, a
    /// seeded hash under a perturbed restart (lowest-position has no
    /// static key to jitter, so the tiebreak is where its perturbation
    /// lives).
    // tela-lint: hot-path
    fn position_tiebreak(&self, id: BufferId) -> u64 {
        let seed = self.config.perturbation_seed;
        if seed == 0 {
            id.index() as u64
        } else {
            tela_heuristics::perturb::tiebreak(id.index() as u64, seed)
        }
    }

    /// Orders the remainder of a pool by the primary strategy's key.
    ///
    /// The keys carry the buffer index as a tiebreak, so they are unique
    /// per element and the unstable sorts below order exactly like the
    /// stable ones — without the stable sort's temporary allocation.
    /// Pools filled through [`for_each_unfixed`](Engine::for_each_unfixed)
    /// under a static primary strategy arrive pre-sorted, so this only
    /// runs for the dynamic lowest-position order.
    fn order_pool(&self, pool: &mut [BufferId]) {
        if self.primary_order.is_some() {
            return;
        }
        match self.config.selection.first() {
            Some(SelectionStrategy::LowestPosition) => {
                pool.sort_unstable_by_key(|&id| {
                    (self.solver.domain(id).lo(), self.position_tiebreak(id))
                });
            }
            Some(strategy) => {
                let strategy = *strategy;
                pool.sort_unstable_by_key(|&id| {
                    (
                        std::cmp::Reverse(strategy.key(self.problem, id)),
                        id.index(),
                    )
                });
            }
            None => pool.sort_unstable(),
        }
    }

    fn major_backtrack(
        &mut self,
        policy: &mut dyn BacktrackPolicy,
        observer: &mut dyn SearchObserver,
    ) {
        self.stats.major_backtracks += 1;
        self.global_backtracks += 1;
        #[cfg(feature = "trace")]
        if self.config.tracer.enabled() {
            self.config.tracer.instant(
                "search",
                "major_backtrack",
                vec![
                    ("level".into(), self.frames.len().into()),
                    ("total".into(), self.global_backtracks.into()),
                ],
            );
        }

        let conflict = self.current.last_conflict.take().map(|(seed, block, pos)| {
            // Materialize the one explanation this backtrack reads;
            // the intervening minor backtracks never paid for theirs.
            let mut c = match &seed {
                Some(seed) => self.solver.explain(seed),
                None => Conflict {
                    subject: Some(block),
                    culprits: Vec::new(),
                },
            };
            if self.config.minimize_conflicts && c.culprits.len() > 1 {
                let placements: Vec<(BufferId, Address)> =
                    self.frames.iter().filter_map(|f| f.placed).collect();
                c.culprits = tela_cp::explain::minimize_conflict_traced(
                    self.problem,
                    &placements,
                    (block, pos),
                    &c.culprits,
                    &self.config.tracer,
                );
            }
            c
        });
        if let Some(c) = &conflict {
            for &culprit in &c.culprits {
                self.culprit_counts[culprit.index()] += 1;
            }
        }
        let targets = self.build_targets(conflict.as_ref());
        let mut path = std::mem::take(&mut self.scratch.path);
        self.fill_path(&mut path);
        let ctx = BacktrackContext {
            problem: self.problem,
            targets: &targets,
            path: &path,
            current_level: self.frames.len(),
            total_backtracks: self.global_backtracks,
        };
        let choice = policy.choose(&ctx);
        observer.on_major_backtrack(&ctx, choice);
        let _ = ctx;
        self.scratch.path = path;

        match choice {
            BacktrackChoice::StayAndTryAll => {
                // §6.5 fallback: retry every unplaced block not yet tried
                // here; if nothing is left, fall back to one step up.
                let tried = &self.current.tried;
                let fresh: VecDeque<BufferId> = self
                    .solver
                    .unfixed()
                    .filter(|id| !tried.contains(id))
                    .collect();
                if fresh.is_empty() {
                    let level = self.frames.len().saturating_sub(1);
                    self.jump_to(level);
                } else {
                    self.current.queue = fresh;
                }
            }
            BacktrackChoice::Target(level) => {
                let level = level.min(self.frames.len().saturating_sub(1));
                self.jump_to(level);
            }
        }
    }

    /// Backtracks so that the decision at `level` is reconsidered,
    /// applying the §5.4 stuck-subtree escape and candidate prepending.
    fn jump_to(&mut self, mut level: usize) {
        // Stuck-subtree escape: if some shallower open point has
        // accumulated more than the limit of backtracks in its subtree,
        // continue from the shallowest such point instead.
        let limit = self.config.stuck_subtree_limit;
        if limit > 0 {
            if let Some(stuck) = self
                .frames
                .iter()
                .position(|f| self.global_backtracks - f.opened_at_backtracks > limit)
            {
                level = level.min(stuck);
            }
        }

        let mut failing = std::mem::replace(&mut self.current, Frame::new(None, 0));
        // Detach the abandoned suffix without allocating a holding
        // vector: `frames[level]` becomes the new decision point, the
        // deeper frames retire into the scratch pool for reuse.
        let mut retired = std::mem::take(&mut self.scratch.frames);
        let mut drained = self.frames.drain(level..);
        let mut target = drained
            .next()
            .expect("jump target is an existing decision level");
        for mut f in drained {
            f.last_conflict = None;
            retired.push(f);
        }
        self.scratch.frames = retired;
        self.solver.pop_to_level(level);
        target.placed = None;
        target.backtracks_to += 1;
        // Reset the subtree counter: a fresh visit starts a fresh subtree.
        target.opened_at_backtracks = self.global_backtracks;
        target.last_conflict = None;

        if self.config.candidate_prepending {
            // Prepend the failing point's candidate set (§5.4) — tried
            // first, then its remaining queue, reversed so the earliest
            // candidate ends up at the front — dropping anything already
            // queued and respecting the cap.
            let cap = self.config.max_candidates_per_level.max(1);
            for &id in failing.tried.iter().chain(failing.queue.iter()).rev() {
                if !target.queue.contains(&id) && !self.solver.is_fixed(id) {
                    target.queue.push_front(id);
                }
            }
            while target.queue.len() > cap {
                target.queue.pop_back();
            }
        }
        self.current = target;
        failing.last_conflict = None;
        self.scratch.frames.push(failing);
    }

    /// Builds the candidate backtrack targets (§6.2): conflict culprits
    /// minus the most recent one, padded with exponential-range fillers.
    fn build_targets(&mut self, conflict: Option<&Conflict>) -> Vec<BacktrackTarget> {
        let mut level_of = std::mem::take(&mut self.scratch.level_of);
        level_of.clear();
        level_of.resize(self.problem.len(), usize::MAX);
        for (lvl, f) in self.frames.iter().enumerate() {
            if let Some((block, _)) = f.placed {
                level_of[block.index()] = lvl;
            }
        }
        let mut levels: Vec<(usize, bool)> = Vec::new();
        if let Some(c) = conflict {
            let mut culprit_levels: Vec<usize> = c
                .culprits
                .iter()
                .map(|b| level_of[b.index()])
                .filter(|&l| l != usize::MAX)
                .collect();
            culprit_levels.sort_unstable();
            culprit_levels.dedup();
            // Ignore the most recent culprit (§6.2): backtracking there is
            // what a minor backtrack already covers.
            culprit_levels.pop();
            levels.extend(culprit_levels.into_iter().map(|l| (l, true)));
        }
        // Exponential ranges 0-4, 5-8, 9-16, 17-32, ... (§6.2): add the
        // top of each uncovered range as a filler target.
        let mut lo = 0usize;
        let mut hi = 4usize;
        while lo < self.frames.len() {
            let top = hi.min(self.frames.len() - 1);
            let covered = levels.iter().any(|&(l, _)| lo <= l && l <= top);
            if !covered && top >= lo {
                levels.push((top, false));
            }
            lo = hi + 1;
            hi *= 2;
        }
        levels.sort_unstable();
        levels.dedup_by_key(|&mut (l, _)| l);

        let horizon = self.problem.horizon().max(1) as f64;
        let capacity = self.problem.capacity().max(1) as f64;
        let from_phase = self
            .frames
            .last()
            .and_then(|f| f.placed)
            .and_then(|(b, _)| self.phases.as_ref().map(|p| p.phase_of(b)));
        self.scratch.level_of = level_of;
        levels
            .into_iter()
            .map(|(level, from_conflict)| {
                // Invariant: same as `path` — every frame in `frames` is
                // committed, so `placed` is always `Some`.
                let (block, _) = self.frames[level].placed.expect("committed frame");
                let b = self.problem.buffer(block);
                let same_region = match (from_phase, &self.phases) {
                    (Some(fp), Some(p)) => (p.phase_of(block) == fp) as u8 as f64,
                    _ => 0.0,
                };
                BacktrackTarget {
                    level,
                    block,
                    from_conflict,
                    features: TargetFeatures {
                        size: b.size() as f64 / capacity,
                        lifetime: f64::from(b.lifetime()) / horizon,
                        contention: self.buffer_contention[block.index()] as f64 / capacity,
                        decision_level: level as f64,
                        culprit_appearances: self.culprit_counts[block.index()] as f64,
                        backtracks_to_here: self.frames[level].backtracks_to as f64,
                        subtree_backtracks: (self.global_backtracks
                            - self.frames[level].opened_at_backtracks)
                            as f64,
                        same_region,
                        total_backtracks: self.global_backtracks as f64,
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    fn solve_default(problem: &Problem) -> TelaResult {
        solve(problem, &Budget::steps(500_000), &TelaConfig::default())
    }

    #[test]
    fn solves_tiny() {
        let p = examples::tiny();
        let r = solve_default(&p);
        assert!(r.outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn solves_figure1_at_tight_capacity() {
        let p = examples::figure1();
        let r = solve_default(&p);
        assert!(
            r.outcome.solution().unwrap().validate(&p).is_ok(),
            "stats: {:?}",
            r.stats
        );
    }

    #[test]
    fn solves_aligned_example() {
        let p = examples::aligned();
        let r = solve_default(&p);
        assert!(r.outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn infeasible_detected_before_search() {
        let r = solve_default(&examples::infeasible());
        assert_eq!(r.outcome, SolveOutcome::Infeasible);
        assert_eq!(r.stats.steps, 0);
        let cert = r.certificate.expect("audit provides a witness");
        assert!(cert.verify(&examples::infeasible()));
    }

    #[test]
    fn infeasible_detected_without_preflight_too() {
        // With the audit disabled the CP model construction still rejects
        // contention-infeasible instances, just without a certificate.
        let cfg = TelaConfig {
            preflight_audit: false,
            ..TelaConfig::default()
        };
        let r = solve(&examples::infeasible(), &Budget::steps(500_000), &cfg);
        assert_eq!(r.outcome, SolveOutcome::Infeasible);
        assert_eq!(r.certificate, None);
    }

    #[test]
    fn alignment_infeasible_needs_the_audit() {
        // Contention 11 ≤ 12, but alignment padding makes the pair
        // unpackable: only the audit's pigeonhole proves it; without the
        // preflight the search exhausts and merely gives up.
        let p = Problem::builder(12)
            .buffer(Buffer::new(0, 4, 5).with_align(8))
            .buffer(Buffer::new(0, 4, 6).with_align(8))
            .build()
            .unwrap();
        let audited = solve_default(&p);
        assert_eq!(audited.outcome, SolveOutcome::Infeasible);
        assert_eq!(audited.stats.steps, 0);
        assert!(audited.certificate.expect("witness").verify(&p));
        let unaudited = solve(
            &p,
            &Budget::steps(500_000),
            &TelaConfig {
                preflight_audit: false,
                ..TelaConfig::default()
            },
        );
        assert!(!unaudited.outcome.is_solved());
        assert!(unaudited.stats.steps > 0, "search had to try");
    }

    #[test]
    fn trivially_feasible_instances_skip_search() {
        // Pairwise time-disjoint: the audit solves it with zero steps and
        // still reports a full decision path.
        let p = Problem::builder(16)
            .buffers((0..6).map(|i| Buffer::new(i * 2, i * 2 + 2, 16)))
            .build()
            .unwrap();
        let r = solve_default(&p);
        let solution = r.outcome.solution().expect("trivially feasible");
        assert!(solution.validate(&p).is_ok());
        assert_eq!(r.stats.steps, 0);
        assert_eq!(r.decisions.len(), p.len());
        for d in &r.decisions {
            assert_eq!(solution.address(d.block), d.address);
        }
    }

    #[test]
    fn decisions_match_solution() {
        let p = examples::figure1();
        let r = solve_default(&p);
        let solution = r.outcome.solution().unwrap();
        assert_eq!(r.decisions.len(), p.len());
        for d in &r.decisions {
            assert_eq!(solution.address(d.block), d.address);
        }
    }

    #[test]
    fn budget_exceeded_reported() {
        let p = examples::figure1();
        let r = solve(&p, &Budget::steps(3), &TelaConfig::default());
        assert_eq!(r.outcome, SolveOutcome::BudgetExceeded);
        assert!(r.stats.steps <= 3);
    }

    #[test]
    fn empty_problem_is_solved_immediately() {
        let p = Problem::builder(10).build().unwrap();
        let r = solve_default(&p);
        assert!(r.outcome.is_solved());
        assert_eq!(r.stats.steps, 0);
    }

    #[test]
    fn split_independent_solves_groups_separately() {
        // Two disjoint clusters; both solvable.
        let p = Problem::builder(8)
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(0, 2, 4))
            .buffer(Buffer::new(5, 7, 8))
            .build()
            .unwrap();
        let r = solve_default(&p);
        let s = r.outcome.solution().unwrap();
        assert!(s.validate(&p).is_ok());
        assert_eq!(r.decisions.len(), 3);
    }

    #[test]
    fn all_configs_solve_figure1() {
        let p = examples::figure1();
        for strategy in [
            SelectionStrategy::MaxLifetime,
            SelectionStrategy::MaxSize,
            SelectionStrategy::MaxArea,
            SelectionStrategy::LowestPosition,
        ] {
            let cfg = TelaConfig::single_strategy(strategy);
            let r = solve(&p, &Budget::steps(500_000), &cfg);
            assert!(
                matches!(r.outcome, SolveOutcome::Solved(_) | SolveOutcome::GaveUp),
                "{strategy}: unexpected outcome {:?}",
                r.outcome
            );
            if let Some(s) = r.outcome.solution() {
                assert!(s.validate(&p).is_ok(), "{strategy}");
            }
        }
    }

    #[test]
    fn skyline_placement_mode_works() {
        let p = examples::tiny();
        let cfg = TelaConfig {
            solver_guided_placement: false,
            ..TelaConfig::default()
        };
        let r = solve(&p, &Budget::steps(500_000), &cfg);
        assert!(r.outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn no_grouping_mode_works() {
        let p = examples::figure1();
        let cfg = TelaConfig {
            contention_grouping: false,
            ..TelaConfig::default()
        };
        let r = solve(&p, &Budget::steps(500_000), &cfg);
        assert!(r.outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn fixed_step_backtracking_mode_works() {
        let p = examples::figure1();
        let cfg = TelaConfig {
            conflict_guided_backtracking: false,
            fixed_backtrack_steps: 2,
            ..TelaConfig::default()
        };
        let r = solve(&p, &Budget::steps(500_000), &cfg);
        assert!(matches!(
            r.outcome,
            SolveOutcome::Solved(_) | SolveOutcome::GaveUp
        ));
    }

    #[test]
    fn observer_sees_solution_path() {
        #[derive(Default)]
        struct Recorder {
            solved_len: usize,
            majors: usize,
        }
        impl SearchObserver for Recorder {
            fn on_major_backtrack(&mut self, _: &BacktrackContext<'_>, _: BacktrackChoice) {
                self.majors += 1;
            }
            fn on_solved(&mut self, path: &[PlacedDecision]) {
                self.solved_len += path.len();
            }
        }
        let p = examples::figure1();
        let mut policy = ConflictGuidedPolicy;
        let mut rec = Recorder::default();
        let cfg = TelaConfig {
            split_independent: false,
            ..TelaConfig::default()
        };
        let r = solve_with(&p, &Budget::steps(500_000), &cfg, &mut policy, &mut rec);
        assert!(r.outcome.is_solved());
        assert_eq!(rec.solved_len, p.len());
        assert_eq!(rec.majors as u64, r.stats.major_backtracks);
    }

    #[test]
    fn stats_track_steps_and_backtracks() {
        let p = examples::figure1();
        let r = solve_default(&p);
        assert!(r.stats.steps >= p.len() as u64);
        assert_eq!(
            r.stats.total_backtracks(),
            r.stats.minor_backtracks + r.stats.major_backtracks
        );
    }

    #[test]
    fn full_overlap_exact_fit() {
        let p = Problem::builder(12)
            .buffers((0..12).map(|_| Buffer::new(0, 3, 1)))
            .build()
            .unwrap();
        let r = solve_default(&p);
        assert!(r.outcome.solution().unwrap().validate(&p).is_ok());
    }
}

#[cfg(test)]
mod gate_tests {
    use super::*;
    use tela_model::examples;

    /// A policy that always expands candidates and counts hook calls.
    struct AlwaysExpand {
        calls: usize,
        inner: ConflictGuidedPolicy,
    }
    impl BacktrackPolicy for AlwaysExpand {
        fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
            self.inner.choose(ctx)
        }
        fn expand_candidates(&mut self, ctx: &StepContext) -> bool {
            self.calls += 1;
            assert!(ctx.unplaced <= ctx.total_buffers);
            true
        }
    }

    #[test]
    fn expansion_hook_is_consulted_per_decision_point() {
        let p = examples::figure1();
        let mut policy = AlwaysExpand {
            calls: 0,
            inner: ConflictGuidedPolicy,
        };
        let mut obs = NullObserver;
        let cfg = TelaConfig {
            split_independent: false,
            ..TelaConfig::default()
        };
        let r = solve_with(&p, &Budget::steps(100_000), &cfg, &mut policy, &mut obs);
        assert!(r.outcome.is_solved());
        // At least one hook call per committed decision.
        assert!(policy.calls >= p.len());
    }

    #[test]
    fn expansion_preserves_soundness_on_models() {
        struct ExpandWhenStuck;
        impl BacktrackPolicy for ExpandWhenStuck {
            fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
                ConflictGuidedPolicy.choose(ctx)
            }
            fn expand_candidates(&mut self, ctx: &StepContext) -> bool {
                ctx.subtree_backtracks > 5
            }
        }
        let p = examples::aligned();
        let mut policy = ExpandWhenStuck;
        let mut obs = NullObserver;
        let r = solve_with(
            &p,
            &Budget::steps(100_000),
            &TelaConfig::default(),
            &mut policy,
            &mut obs,
        );
        if let Some(s) = r.outcome.solution() {
            assert!(s.validate(&p).is_ok());
        }
    }

    /// A policy returning garbage backtrack levels: the engine must
    /// clamp and stay sound.
    struct Pathological;
    impl BacktrackPolicy for Pathological {
        fn choose(&mut self, _: &BacktrackContext<'_>) -> BacktrackChoice {
            BacktrackChoice::Target(usize::MAX)
        }
    }

    #[test]
    fn pathological_policy_cannot_break_the_engine() {
        let p = examples::figure1();
        let mut policy = Pathological;
        let mut obs = NullObserver;
        let r = solve_with(
            &p,
            &Budget::steps(50_000),
            &TelaConfig::default(),
            &mut policy,
            &mut obs,
        );
        if let Some(s) = r.outcome.solution() {
            assert!(s.validate(&p).is_ok());
        }
    }
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use tela_model::examples;

    #[test]
    fn minimized_conflicts_keep_search_sound() {
        let cfg = TelaConfig {
            minimize_conflicts: true,
            ..TelaConfig::default()
        };
        for p in [examples::figure1(), examples::aligned(), examples::tiny()] {
            let r = solve(&p, &Budget::steps(200_000), &cfg);
            let s = r.outcome.solution().expect("examples stay solvable");
            assert!(s.validate(&p).is_ok());
        }
    }

    #[test]
    fn minimization_changes_no_outcomes_on_models() {
        use tela_workloads::{problem_with_slack, ModelKind};
        let p = problem_with_slack(ModelKind::Segmentation.generate(0), 10);
        let plain = solve(&p, &Budget::steps(200_000), &TelaConfig::default());
        let minimized = solve(
            &p,
            &Budget::steps(200_000),
            &TelaConfig {
                minimize_conflicts: true,
                ..TelaConfig::default()
            },
        );
        assert_eq!(plain.outcome.is_solved(), minimized.outcome.is_solved());
    }
}
