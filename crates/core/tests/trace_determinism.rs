//! Trace determinism: two identical solves under the logical clock must
//! produce byte-identical JSONL traces.
//!
//! The exported artifact has exactly one nondeterministic line — the
//! wall-clock capture header — so every test here strips the first line
//! and compares the rest byte-for-byte. This is the property that makes
//! traces diffable: a behavior change between two builds shows up as a
//! textual diff against a recorded baseline, and an unchanged solver
//! produces an empty diff.
//!
//! Wall-time histograms (`*.elapsed_us`) are deliberately skipped under
//! [`tela_trace::ClockMode::Logical`]; if one ever leaks into a logical
//! trace these tests catch it as flaky metric lines.

use std::sync::Arc;

use tela_model::{examples, Budget, Buffer, Problem};
use tela_trace::{write_jsonl, Tracer};
use telamalloc::{
    solve_portfolio, AdaptiveConfig, EscalationLadder, PortfolioVariant, SpillHook, TelaConfig,
    VariantRanker,
};

/// Runs `f` against a fresh logical-clock tracer and returns the JSONL
/// body (everything after the wall-clock header line).
fn traced_body(f: impl FnOnce(&TelaConfig)) -> String {
    let tracer = Tracer::logical();
    let config = TelaConfig {
        // Determinism requires the sequential race: parallel workers
        // interleave their buffer flushes in OS-scheduling order.
        threads: 1,
        tracer: tracer.clone(),
        ..TelaConfig::default()
    };
    f(&config);
    let trace = tracer.snapshot().expect("tracer is enabled");
    let jsonl = write_jsonl(&trace);
    let (header, body) = jsonl.split_once('\n').expect("header line");
    assert!(header.contains("\"clock\":\"logical\""));
    body.to_string()
}

#[test]
fn identical_portfolio_solves_trace_identically() {
    let run = || {
        traced_body(|config| {
            let p = examples::figure1();
            let race = solve_portfolio(&p, &Budget::steps(200_000), config);
            assert!(race.result.outcome.is_solved());
        })
    };
    let first = run();
    assert_eq!(first, run(), "logical traces must be byte-identical");
    assert!(!first.is_empty(), "a solve emits events and metrics");
}

/// Evicts the last buffer each round so the ladder exercises spill
/// rounds, preflight certificates, and the greedy stage.
struct DropLast {
    buffers: Vec<Buffer>,
    capacity: u64,
}

impl SpillHook for DropLast {
    fn spill(&mut self, _round: u32) -> Option<Problem> {
        self.buffers.pop()?;
        Problem::new(self.buffers.clone(), self.capacity).ok()
    }
}

#[test]
fn identical_ladder_solves_trace_identically() {
    let run = || {
        traced_body(|config| {
            let buffers: Vec<Buffer> = (0..6).map(|_| Buffer::new(0, 4, 2)).collect();
            let overloaded = Problem::new(buffers.clone(), 8).unwrap();
            let mut hook = DropLast {
                buffers,
                capacity: 8,
            };
            let ladder = EscalationLadder::new(config.clone());
            let result = ladder.solve_with_spill(overloaded, &Budget::steps(200_000), &mut hook);
            assert!(result.spill_rounds > 0, "the ladder must actually spill");
        })
    };
    let first = run();
    assert_eq!(first, run(), "ladder traces must be byte-identical");
    // The certificate wiring (preflight-settled attempts still explain
    // themselves) shows up as audit events in the stream.
    assert!(first.contains("\"layer\":\"audit\""));
    assert!(first.contains("certificate"));
}

/// Prefers variants in list order; with a fixed logical clock the whole
/// adaptive schedule is a pure function of the config.
#[derive(Debug)]
struct FavorBase;

impl VariantRanker for FavorBase {
    fn scores(&self, _features: &[f64], variants: &[PortfolioVariant]) -> Vec<f64> {
        (0..variants.len()).map(|i| -(i as f64)).collect()
    }
}

/// Bandit determinism: fixed seed + logical clock ⇒ the round-by-round
/// quota schedule, restarts, and final winner replay byte-for-byte in
/// the trace stream.
#[test]
fn identical_adaptive_solves_trace_identically() {
    let run = || {
        traced_body(|config| {
            let config = TelaConfig {
                adaptive: AdaptiveConfig {
                    ranker: Some(Arc::new(FavorBase)),
                    // Tiny quotas force several bandit rounds so the
                    // comparison covers re-selection and restarts, not
                    // just a round-0 win.
                    initial_quota: 8,
                    quota_growth: 4,
                    max_rounds: 16,
                    ..AdaptiveConfig::default()
                },
                ..config.clone()
            };
            let p = examples::figure1();
            let race = solve_portfolio(&p, &Budget::steps(200_000), &config);
            assert!(race.result.outcome.is_solved());
            assert!(race.adaptive.expect("adaptive race reports").rounds.len() > 1);
        })
    };
    let first = run();
    assert_eq!(first, run(), "adaptive traces must be byte-identical");
    assert!(first.contains("adaptive_seed"), "seeding event emitted");
    assert!(first.contains("adaptive_round"), "round events emitted");
    assert!(
        first.contains("\"name\":\"winner\""),
        "winner identity lands in the trace stream"
    );
}

/// Fallback semantics: adaptive knobs without a ranker must leave the
/// blind race's trace untouched — only a configured model activates the
/// scheduler.
#[test]
fn unranked_adaptive_config_traces_like_the_blind_race() {
    let blind = traced_body(|config| {
        let p = examples::figure1();
        solve_portfolio(&p, &Budget::steps(200_000), config);
    });
    let tuned = traced_body(|config| {
        let config = TelaConfig {
            adaptive: AdaptiveConfig {
                top_k: 3,
                initial_quota: 16,
                quota_growth: 2,
                ..AdaptiveConfig::default()
            },
            ..config.clone()
        };
        let p = examples::figure1();
        solve_portfolio(&p, &Budget::steps(200_000), &config);
    });
    assert_eq!(blind, tuned, "no ranker ⇒ bit-for-bit the blind race");
}

/// Chaos determinism: even with an injected variant panic the trace —
/// including the captured panic payload event — is reproducible.
#[cfg(feature = "fault-inject")]
#[test]
fn chaos_run_with_injected_panic_traces_identically() {
    use tela_model::fault::FaultPlan;

    let run = || {
        traced_body(|config| {
            let config = TelaConfig {
                fault_plan: Some(FaultPlan {
                    panic_at_step: Some(5),
                    victim_variant: Some(0),
                    ..FaultPlan::default()
                }),
                ..config.clone()
            };
            let p = examples::figure1();
            let race = solve_portfolio(&p, &Budget::steps(200_000), &config);
            assert_eq!(race.panicked(), 1);
        })
    };
    let first = run();
    assert_eq!(first, run(), "chaos traces must be byte-identical");
    assert!(
        first.contains("variant_panicked"),
        "the panic payload lands in the trace stream"
    );
    assert!(first.contains("injected panic at step"));
}

/// Chaos fallback: an active fault plan disables the adaptive scheduler
/// entirely, so a configured ranker changes *nothing* about a chaos
/// run's trace — it is byte-identical to the blind chaos race.
#[cfg(feature = "fault-inject")]
#[test]
fn fault_plans_silence_the_adaptive_scheduler_in_traces() {
    use tela_model::fault::FaultPlan;

    let plan = || FaultPlan {
        panic_at_step: Some(5),
        victim_variant: Some(0),
        ..FaultPlan::default()
    };
    let blind = traced_body(|config| {
        let config = TelaConfig {
            fault_plan: Some(plan()),
            ..config.clone()
        };
        let p = examples::figure1();
        solve_portfolio(&p, &Budget::steps(200_000), &config);
    });
    let adaptive = traced_body(|config| {
        let config = TelaConfig {
            adaptive: AdaptiveConfig {
                ranker: Some(Arc::new(FavorBase)),
                ..AdaptiveConfig::default()
            },
            fault_plan: Some(plan()),
            ..config.clone()
        };
        let p = examples::figure1();
        let race = solve_portfolio(&p, &Budget::steps(200_000), &config);
        assert!(race.adaptive.is_none(), "chaos must force the blind race");
    });
    assert_eq!(
        blind, adaptive,
        "under chaos the ranker must be bit-for-bit inert"
    );
    assert!(
        !blind.contains("adaptive"),
        "no adaptive events under chaos"
    );
}
