//! Trace determinism: two identical solves under the logical clock must
//! produce byte-identical JSONL traces.
//!
//! The exported artifact has exactly one nondeterministic line — the
//! wall-clock capture header — so every test here strips the first line
//! and compares the rest byte-for-byte. This is the property that makes
//! traces diffable: a behavior change between two builds shows up as a
//! textual diff against a recorded baseline, and an unchanged solver
//! produces an empty diff.
//!
//! Wall-time histograms (`*.elapsed_us`) are deliberately skipped under
//! [`tela_trace::ClockMode::Logical`]; if one ever leaks into a logical
//! trace these tests catch it as flaky metric lines.

use tela_model::{examples, Budget, Buffer, Problem};
use tela_trace::{write_jsonl, Tracer};
use telamalloc::{solve_portfolio, EscalationLadder, SpillHook, TelaConfig};

/// Runs `f` against a fresh logical-clock tracer and returns the JSONL
/// body (everything after the wall-clock header line).
fn traced_body(f: impl FnOnce(&TelaConfig)) -> String {
    let tracer = Tracer::logical();
    let config = TelaConfig {
        // Determinism requires the sequential race: parallel workers
        // interleave their buffer flushes in OS-scheduling order.
        threads: 1,
        tracer: tracer.clone(),
        ..TelaConfig::default()
    };
    f(&config);
    let trace = tracer.snapshot().expect("tracer is enabled");
    let jsonl = write_jsonl(&trace);
    let (header, body) = jsonl.split_once('\n').expect("header line");
    assert!(header.contains("\"clock\":\"logical\""));
    body.to_string()
}

#[test]
fn identical_portfolio_solves_trace_identically() {
    let run = || {
        traced_body(|config| {
            let p = examples::figure1();
            let race = solve_portfolio(&p, &Budget::steps(200_000), config);
            assert!(race.result.outcome.is_solved());
        })
    };
    let first = run();
    assert_eq!(first, run(), "logical traces must be byte-identical");
    assert!(!first.is_empty(), "a solve emits events and metrics");
}

/// Evicts the last buffer each round so the ladder exercises spill
/// rounds, preflight certificates, and the greedy stage.
struct DropLast {
    buffers: Vec<Buffer>,
    capacity: u64,
}

impl SpillHook for DropLast {
    fn spill(&mut self, _round: u32) -> Option<Problem> {
        self.buffers.pop()?;
        Problem::new(self.buffers.clone(), self.capacity).ok()
    }
}

#[test]
fn identical_ladder_solves_trace_identically() {
    let run = || {
        traced_body(|config| {
            let buffers: Vec<Buffer> = (0..6).map(|_| Buffer::new(0, 4, 2)).collect();
            let overloaded = Problem::new(buffers.clone(), 8).unwrap();
            let mut hook = DropLast {
                buffers,
                capacity: 8,
            };
            let ladder = EscalationLadder::new(config.clone());
            let result = ladder.solve_with_spill(overloaded, &Budget::steps(200_000), &mut hook);
            assert!(result.spill_rounds > 0, "the ladder must actually spill");
        })
    };
    let first = run();
    assert_eq!(first, run(), "ladder traces must be byte-identical");
    // The certificate wiring (preflight-settled attempts still explain
    // themselves) shows up as audit events in the stream.
    assert!(first.contains("\"layer\":\"audit\""));
    assert!(first.contains("certificate"));
}

/// Chaos determinism: even with an injected variant panic the trace —
/// including the captured panic payload event — is reproducible.
#[cfg(feature = "fault-inject")]
#[test]
fn chaos_run_with_injected_panic_traces_identically() {
    use tela_model::fault::FaultPlan;

    let run = || {
        traced_body(|config| {
            let config = TelaConfig {
                fault_plan: Some(FaultPlan {
                    panic_at_step: Some(5),
                    victim_variant: Some(0),
                    ..FaultPlan::default()
                }),
                ..config.clone()
            };
            let p = examples::figure1();
            let race = solve_portfolio(&p, &Budget::steps(200_000), &config);
            assert_eq!(race.panicked(), 1);
        })
    };
    let first = run();
    assert_eq!(first, run(), "chaos traces must be byte-identical");
    assert!(
        first.contains("variant_panicked"),
        "the panic payload lands in the trace stream"
    );
    assert!(first.contains("injected panic at step"));
}
