//! Deterministic-interleaving stress test for the portfolio's
//! shared-`AtomicBool` cancel protocol, and the primary target of the
//! nightly ThreadSanitizer CI job.
//!
//! The protocol under test (see `portfolio.rs`): workers share one
//! cancellation flag through [`Budget::with_cancel`]; the winner
//! publishes its result *before* flipping the flag with a `Release`
//! store, and losers that observe the flag with an `Acquire` load must
//! therefore also observe the published result.
//!
//! Plain counter loops race too chaotically to pin that ordering — most
//! schedules never exercise the publish/observe edge. Here every round
//! is barrier-aligned so all threads enter the race window together,
//! and the designated winner rotates, so over the rounds every thread
//! exercises both sides of the protocol on every core. Under TSan (or
//! Miri) an incorrectly-relaxed store/load pair in either this test or
//! the protocol itself is reported as a data race; without sanitizers
//! the assertions still catch a reordered publish on weakly-ordered
//! hardware.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use tela_model::Budget;

const THREADS: usize = 4;
const ROUNDS: usize = 200;
const NOT_PUBLISHED: u64 = u64::MAX;

#[test]
fn winner_publication_is_visible_to_cancelled_losers() {
    let barrier = Barrier::new(THREADS);
    let violations = AtomicU64::new(0);

    // Per-round shared state, allocated up front so the measurement loop
    // is pure synchronization.
    let rounds: Vec<(Arc<AtomicBool>, AtomicU64)> = (0..ROUNDS)
        .map(|_| {
            (
                Arc::new(AtomicBool::new(false)),
                AtomicU64::new(NOT_PUBLISHED),
            )
        })
        .collect();

    std::thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let barrier = &barrier;
            let rounds = &rounds;
            let violations = &violations;
            scope.spawn(move || {
                for (round, (cancel, slot)) in rounds.iter().enumerate() {
                    let winner = round % THREADS;
                    let budget = Budget::unlimited().with_cancel(Arc::clone(cancel));
                    barrier.wait();

                    if thread_id == winner {
                        // The protocol: publish the result first, then
                        // raise the flag. The Release store pairs with
                        // the Acquire load inside `Budget::cancelled`.
                        slot.store(round as u64, Ordering::Relaxed);
                        cancel.store(true, Ordering::Release);
                    } else {
                        // A loser polls exactly as solver inner loops
                        // do, then must see the winner's publication.
                        while !budget.cancelled() {
                            std::hint::spin_loop();
                        }
                        if slot.load(Ordering::Relaxed) != round as u64 {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }

                    // Re-align before the next round so a fast winner
                    // cannot lap a slow loser into the next flag.
                    barrier.wait();
                }
            });
        }
    });

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "a cancelled loser observed the flag without the winner's publication"
    );
}

#[test]
fn cancel_flag_is_idempotent_across_racing_winners() {
    // Several "winners" may flip the flag concurrently (two workers
    // finishing in the same instant); the flag must stay monotonic and
    // every publication made before any flip must be visible.
    let barrier = Barrier::new(THREADS);
    let cancel = Arc::new(AtomicBool::new(false));
    let published = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let barrier = &barrier;
            let cancel = Arc::clone(&cancel);
            let published = &published;
            scope.spawn(move || {
                let budget = Budget::unlimited().with_cancel(Arc::clone(&cancel));
                barrier.wait();
                published.fetch_add(1, Ordering::Relaxed);
                cancel.store(true, Ordering::Release);
                while !budget.cancelled() {
                    std::hint::spin_loop();
                }
                // Own store at minimum is visible through the Acquire.
                assert!(published.load(Ordering::Relaxed) >= 1);
            });
        }
    });

    assert!(cancel.load(Ordering::Acquire));
    assert_eq!(published.load(Ordering::Relaxed), THREADS as u64);
}
