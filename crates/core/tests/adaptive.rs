//! Adaptive portfolio contracts: ranker seeding, bandit quota
//! schedules, determinism, and the blind-race fallback.
//!
//! The core crate only defines the [`VariantRanker`] interface, so these
//! tests drive the scheduler with small deterministic rankers rather
//! than the trained `tela-learned` model (covered by that crate's own
//! tests and the bench trend suite).

use std::sync::Arc;

use tela_model::{examples, Budget, Problem, SolveStats};
use tela_workloads::sweep::certified_configs;
use telamalloc::{solve_portfolio, AdaptiveConfig, PortfolioVariant, TelaConfig, VariantRanker};

/// A certified instance: tight enough that variants disagree, so the
/// bandit actually has work to do.
fn certified() -> Problem {
    certified_configs(1).remove(0).problem
}

/// Everything in [`SolveStats`] except wall-clock time.
fn clock_free(stats: &SolveStats) -> (u64, u64, u64, bool) {
    (
        stats.steps,
        stats.minor_backtracks,
        stats.major_backtracks,
        stats.cancelled,
    )
}

/// Prefers variants in list order (the base variant first) — the
/// schedule is then a pure function of the config.
#[derive(Debug)]
struct FavorBase;

impl VariantRanker for FavorBase {
    fn scores(&self, _features: &[f64], variants: &[PortfolioVariant]) -> Vec<f64> {
        (0..variants.len()).map(|i| -(i as f64)).collect()
    }
}

/// Deliberately backwards: ranks the base variant last, so round 0
/// seeds a "wrong" arm and the bandit has to recover.
#[derive(Debug)]
struct FavorLast;

impl VariantRanker for FavorLast {
    fn scores(&self, _features: &[f64], variants: &[PortfolioVariant]) -> Vec<f64> {
        (0..variants.len()).map(|i| i as f64).collect()
    }
}

fn adaptive_config(ranker: Arc<dyn VariantRanker>, threads: usize) -> TelaConfig {
    TelaConfig {
        threads,
        adaptive: AdaptiveConfig {
            ranker: Some(ranker),
            ..AdaptiveConfig::default()
        },
        ..TelaConfig::default()
    }
}

#[test]
fn adaptive_race_solves_and_reports_the_schedule() {
    let problem = examples::figure1();
    let budget = Budget::steps(200_000);
    let config = adaptive_config(Arc::new(FavorBase), 1);
    let race = solve_portfolio(&problem, &budget, &config);

    let solution = race.result.outcome.solution().expect("figure1 solves");
    assert!(solution.validate(&problem).is_ok());

    let report = race.adaptive.as_ref().expect("adaptive race reports");
    // FavorBase ranks variant 0 highest; threads == 1 ⇒ k == 1.
    assert_eq!(report.seeded, vec![0]);
    assert_eq!(report.scores.len(), 9, "one score per default variant");
    assert!(!report.rounds.is_empty());
    for round in &report.rounds {
        assert!(!round.runs.is_empty());
        for run in &round.runs {
            assert!(run.quota <= round.quota);
        }
    }

    // Winner identity is reported consistently in all three places.
    let index = race.winner.expect("decisive race has a winner");
    let info = race.result.winner.as_ref().expect("winner info attached");
    assert_eq!(info.index, index);
    assert_eq!(info.name, "telamalloc");
    let stats_winner = race.result.stats.winner.expect("stats carry the winner");
    assert_eq!(stats_winner.variant as usize, index);
    assert_eq!(stats_winner.thread, info.thread);
}

#[test]
fn quota_schedule_is_geometric_in_the_round_index() {
    let problem = certified();
    let budget = Budget::steps(50_000);
    let config = TelaConfig {
        threads: 1,
        adaptive: AdaptiveConfig {
            ranker: Some(Arc::new(FavorLast)),
            initial_quota: 64,
            quota_growth: 4,
            max_rounds: 6,
            ..AdaptiveConfig::default()
        },
        ..TelaConfig::default()
    };
    let race = solve_portfolio(&problem, &budget, &config);
    let report = race.adaptive.expect("adaptive race reports");
    for round in &report.rounds {
        // quota = initial · growth^round, capped by the outer budget.
        let planned = 64u64
            .saturating_mul(4u64.saturating_pow(round.round))
            .min(50_000);
        assert_eq!(round.quota, planned, "round {}", round.round);
    }
}

#[test]
fn adaptive_schedule_is_deterministic_at_one_thread() {
    let problem = certified();
    let budget = Budget::steps(100_000);
    let config = adaptive_config(Arc::new(FavorLast), 1);

    let a = solve_portfolio(&problem, &budget, &config);
    let b = solve_portfolio(&problem, &budget, &config);

    assert_eq!(a.adaptive, b.adaptive, "round-by-round schedule replays");
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.result.winner, b.result.winner);
    assert_eq!(a.result.outcome, b.result.outcome);
    assert_eq!(clock_free(&a.result.stats), clock_free(&b.result.stats));
}

#[test]
fn misleading_ranker_still_solves_through_exploration() {
    let problem = examples::figure1();
    let budget = Budget::steps(200_000);
    // Seed the race with the *worst-ranked* arms only; the UCB bonus
    // must still reach a decisive variant within the round cap.
    let config = TelaConfig {
        threads: 1,
        adaptive: AdaptiveConfig {
            ranker: Some(Arc::new(FavorLast)),
            top_k: 2,
            ..AdaptiveConfig::default()
        },
        ..TelaConfig::default()
    };
    let race = solve_portfolio(&problem, &budget, &config);
    let solution = race.result.outcome.solution().expect("figure1 solves");
    assert!(solution.validate(&problem).is_ok());
}

#[test]
fn adaptive_race_solves_in_parallel() {
    let problem = examples::figure1();
    let budget = Budget::steps(200_000);
    let config = adaptive_config(Arc::new(FavorBase), 4);
    let race = solve_portfolio(&problem, &budget, &config);
    let solution = race.result.outcome.solution().expect("figure1 solves");
    assert!(solution.validate(&problem).is_ok());
    let report = race.adaptive.expect("adaptive race reports");
    // threads == 4 ⇒ round 0 seeds the predicted top-4, best first.
    assert_eq!(report.seeded.len(), 4);
    assert_eq!(report.seeded[0], 0);
    assert!(race.result.winner.is_some());
}

#[test]
fn no_ranker_is_bit_for_bit_the_blind_race() {
    let problem = certified();
    let budget = Budget::steps(60_000);
    // Adaptive knobs without a ranker must be inert: identical results
    // to the untouched default, and no adaptive report.
    let tuned = TelaConfig {
        threads: 1,
        adaptive: AdaptiveConfig {
            top_k: 3,
            initial_quota: 17,
            quota_growth: 3,
            ..AdaptiveConfig::default()
        },
        ..TelaConfig::default()
    };
    let blind = TelaConfig {
        threads: 1,
        ..TelaConfig::default()
    };
    let a = solve_portfolio(&problem, &budget, &tuned);
    let b = solve_portfolio(&problem, &budget, &blind);
    assert!(a.adaptive.is_none(), "no ranker ⇒ no adaptive race");
    assert!(b.adaptive.is_none());
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.result.outcome, b.result.outcome);
    assert_eq!(clock_free(&a.result.stats), clock_free(&b.result.stats));
    assert_eq!(a.result.decisions, b.result.decisions);
}

#[test]
fn perturbed_restarts_still_produce_valid_solutions() {
    // A tiny round quota forces several bandit rounds and perturbed
    // restarts before anything can finish; the eventual solution must
    // still validate.
    let problem = examples::figure1();
    let budget = Budget::steps(200_000);
    let config = TelaConfig {
        threads: 1,
        adaptive: AdaptiveConfig {
            ranker: Some(Arc::new(FavorBase)),
            initial_quota: 2,
            quota_growth: 2,
            max_rounds: 20,
            ..AdaptiveConfig::default()
        },
        ..TelaConfig::default()
    };
    let race = solve_portfolio(&problem, &budget, &config);
    let report = race.adaptive.as_ref().expect("adaptive race reports");
    assert!(report.rounds.len() > 1, "tiny quotas force multiple rounds");
    let solution = race.result.outcome.solution().expect("figure1 solves");
    assert!(solution.validate(&problem).is_ok());
}

#[cfg(feature = "fault-inject")]
#[test]
fn fault_plans_force_the_blind_fallback() {
    use tela_model::FaultPlan;

    let problem = examples::figure1();
    let budget = Budget::steps(100_000);
    let config = TelaConfig {
        threads: 1,
        adaptive: AdaptiveConfig {
            ranker: Some(Arc::new(FavorBase)),
            ..AdaptiveConfig::default()
        },
        fault_plan: Some(FaultPlan {
            panic_at_step: Some(5),
            victim_variant: Some(0),
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    };
    let race = solve_portfolio(&problem, &budget, &config);
    assert!(
        race.adaptive.is_none(),
        "chaos runs must degrade to the blind race"
    );
    let solution = race.result.outcome.solution().expect("race survives");
    assert!(solution.validate(&problem).is_ok());
}
