//! Portfolio race contracts: sequential determinism, parallel
//! soundness, and "the race never loses to its own base variant".

use proptest::prelude::*;
use tela_model::{Budget, Buffer, Problem, SolveOutcome, SolveStats};
use tela_workloads::sweep::{certified_configs, sweep_configs};
use telamalloc::{solve, solve_portfolio, PortfolioVariant, TelaConfig, VariantOutcome};

/// Everything in [`SolveStats`] except wall-clock time, which can never
/// be bit-identical across runs.
fn clock_free(stats: &SolveStats) -> (u64, u64, u64, bool) {
    (
        stats.steps,
        stats.minor_backtracks,
        stats.major_backtracks,
        stats.cancelled,
    )
}

/// With one thread the portfolio's base variant is the plain search:
/// when it wins, the race result is bit-identical to [`solve`]; when it
/// gives up (certified instances are tight on purpose), its report
/// still is, and only then do later variants run.
#[test]
fn single_thread_race_matches_solve_bit_for_bit() {
    let config = TelaConfig::default();
    let budget = Budget::steps(40_000);
    let mut problems: Vec<(String, Problem)> =
        vec![("figure1".to_string(), tela_model::examples::figure1())];
    problems.extend(
        certified_configs(2)
            .into_iter()
            .map(|s| (s.name, s.problem)),
    );
    let mut base_wins = 0;
    for (name, p) in &problems {
        let direct = solve(p, &budget, &config);
        let race = solve_portfolio(p, &budget, &config);
        if direct.outcome.is_solved() {
            // The base variant was decisive: the race IS the search.
            base_wins += 1;
            assert_eq!(race.winner, Some(0), "{name}: base variant must win");
            assert_eq!(direct.outcome, race.result.outcome, "{name}");
            assert_eq!(
                clock_free(&direct.stats),
                clock_free(&race.result.stats),
                "{name}"
            );
            assert_eq!(direct.decisions, race.result.decisions, "{name}");
            assert!(race.reports[1..].iter().all(Option::is_none), "{name}");
        } else {
            // Base gave up; its report must still mirror the plain
            // search exactly before the race moved on.
            let report = race.reports[0].as_ref().expect("variant 0 always runs");
            assert_eq!(
                report.outcome,
                VariantOutcome::Finished(direct.outcome),
                "{name}"
            );
            assert_eq!(
                clock_free(&report.stats),
                clock_free(&direct.stats),
                "{name}"
            );
        }
    }
    assert!(base_wins > 0, "at least figure1 is won by the base variant");
}

/// Pinning the variant list to the base configuration alone makes the
/// sequential race equivalent to [`solve`] on *every* outcome, not just
/// wins.
#[test]
fn single_variant_race_matches_solve_on_every_outcome() {
    let base = TelaConfig::default();
    let config = TelaConfig {
        variants: vec![PortfolioVariant {
            name: "base".to_string(),
            config: base.clone(),
        }],
        ..base.clone()
    };
    // Tight budget on purpose: exercise the BudgetExceeded path too.
    for budget in [Budget::steps(50), Budget::steps(200_000)] {
        for sweep in sweep_configs(4) {
            let p = &sweep.problem;
            let direct = solve(p, &budget, &base);
            let race = solve_portfolio(p, &budget, &config);
            assert_eq!(direct.outcome, race.result.outcome, "{}", sweep.name);
            assert_eq!(
                clock_free(&direct.stats),
                clock_free(&race.result.stats),
                "{}",
                sweep.name
            );
        }
    }
}

/// Every solution coming out of a multi-threaded race is a real
/// solution, and the winner's report agrees with the final result.
#[test]
fn parallel_race_solutions_validate() {
    let config = TelaConfig {
        threads: 4,
        ..TelaConfig::default()
    };
    let budget = Budget::steps(60_000);
    for sweep in sweep_configs(4) {
        let p = &sweep.problem;
        let race = solve_portfolio(p, &budget, &config);
        if let SolveOutcome::Solved(s) = &race.result.outcome {
            assert!(s.validate(p).is_ok(), "{}", sweep.name);
            let winner = race.winner.expect("a solved race has a winner");
            let report = race.reports[winner]
                .as_ref()
                .expect("the winner filed a report");
            assert_eq!(
                report.outcome,
                VariantOutcome::Finished(race.result.outcome.clone()),
                "{}",
                sweep.name
            );
            assert!(
                !report.stats.cancelled,
                "{}: winners are never cancelled",
                sweep.name
            );
        }
    }
}

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..8,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..10), 6u64..14).prop_map(|(buffers, capacity)| {
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Racing 2–4 workers on random instances: solutions validate,
    /// and the portfolio never does worse than the plain search — the
    /// base configuration is in the race, cancellation only fires once
    /// a decisive (sound) outcome is claimed, so "solve() solves" must
    /// imply "the portfolio solves".
    #[test]
    fn random_races_are_sound(problem in problem_strategy(), threads in 2usize..=4) {
        let budget = Budget::steps(200_000);
        let config = TelaConfig { threads, ..TelaConfig::default() };
        let race = solve_portfolio(&problem, &budget, &config);
        if let SolveOutcome::Solved(s) = &race.result.outcome {
            prop_assert!(s.validate(&problem).is_ok());
        }
        let direct = solve(&problem, &budget, &TelaConfig::default());
        if direct.outcome.is_solved() {
            prop_assert!(
                race.result.outcome.is_solved(),
                "portfolio lost an instance its base variant solves: {:?}",
                race.result.outcome
            );
        }
    }
}
