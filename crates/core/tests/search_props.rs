//! Property tests for the TelaMalloc search: solutions always validate,
//! "infeasible" is only ever claimed with a proof, and the search is
//! deterministic.

use proptest::prelude::*;
use tela_cp::search::solve_cp_only;
use tela_model::{Budget, Buffer, Problem, SolveOutcome};
use telamalloc::{solve, TelaConfig};

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..8,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..10), 6u64..14).prop_map(|(buffers, capacity)| {
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn solutions_always_validate(problem in problem_strategy()) {
        let r = solve(&problem, &Budget::steps(200_000), &TelaConfig::default());
        if let SolveOutcome::Solved(s) = &r.outcome {
            prop_assert!(s.validate(&problem).is_ok());
        }
    }

    #[test]
    fn infeasible_claims_are_sound(problem in problem_strategy()) {
        // TelaMalloc may give up on feasible instances (it is an
        // incomplete search), but when it claims Infeasible the complete
        // CP search must agree.
        let r = solve(&problem, &Budget::steps(200_000), &TelaConfig::default());
        if matches!(r.outcome, SolveOutcome::Infeasible) {
            let (cp, _) = solve_cp_only(&problem, &Budget::steps(1_000_000));
            prop_assert_eq!(cp, SolveOutcome::Infeasible);
        }
    }

    #[test]
    fn search_is_deterministic(problem in problem_strategy()) {
        let a = solve(&problem, &Budget::steps(200_000), &TelaConfig::default());
        let b = solve(&problem, &Budget::steps(200_000), &TelaConfig::default());
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.stats.steps, b.stats.steps);
        prop_assert_eq!(a.stats.minor_backtracks, b.stats.minor_backtracks);
        prop_assert_eq!(a.stats.major_backtracks, b.stats.major_backtracks);
    }

    #[test]
    fn ablation_configs_stay_sound(problem in problem_strategy()) {
        for cfg in [
            TelaConfig { solver_guided_placement: false, ..TelaConfig::default() },
            TelaConfig { contention_grouping: false, ..TelaConfig::default() },
            TelaConfig { candidate_prepending: false, ..TelaConfig::default() },
            TelaConfig { split_independent: false, ..TelaConfig::default() },
        ] {
            let r = solve(&problem, &Budget::steps(100_000), &cfg);
            if let SolveOutcome::Solved(s) = &r.outcome {
                prop_assert!(s.validate(&problem).is_ok());
            }
        }
    }

    #[test]
    fn rarely_gives_up_on_slack_instances(problem in problem_strategy()) {
        // With 30% slack over the contention bound, the full TelaMalloc
        // configuration should solve every one of these small instances.
        // Alignment can make even slack instances infeasible (padding),
        // so strip alignment for this property.
        let unaligned: Vec<Buffer> = problem
            .buffers()
            .iter()
            .map(|b| Buffer::new(b.start(), b.end(), b.size()))
            .collect();
        let slack_capacity = (problem.max_contention() * 13).div_ceil(10).max(6);
        let relaxed = Problem::new(unaligned, slack_capacity).unwrap();
        let r = solve(&relaxed, &Budget::steps(200_000), &TelaConfig::default());
        prop_assert!(
            r.outcome.is_solved(),
            "gave up on slack instance: {:?} -> {:?}",
            relaxed,
            r.outcome
        );
    }
}
