//! Chaos tests: deterministic fault injection against the portfolio and
//! the escalation ladder (requires `--features fault-inject`).
//!
//! The contract under test is the resilience layer's core promise: no
//! matter which seeded fault fires — a worker panic, a virtual stall, a
//! spurious cancellation, a failed spill — the pipeline terminates with
//! a well-formed outcome and never returns an invalid placement.

#![cfg(feature = "fault-inject")]

use std::time::{Duration, Instant};

use proptest::prelude::*;
use tela_cp::search::solve_cp_only;
use tela_model::fault::FaultPlan;
use tela_model::{examples, Budget, Buffer, Problem, SolveOutcome};
use telamalloc::{solve_portfolio, EscalationLadder, TelaConfig, VariantOutcome};

fn panic_victim_config(threads: usize) -> TelaConfig {
    TelaConfig {
        threads,
        fault_plan: Some(FaultPlan {
            // Step 5 is well before figure1 resolves, so the victim
            // always dies mid-search.
            panic_at_step: Some(5),
            victim_variant: Some(0),
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    }
}

/// ISSUE acceptance: one injected variant panics at step N, the race
/// still returns the surviving winner's `Solved` solution, and the
/// panicked variant is reported as `Panicked`.
#[test]
fn sequential_race_survives_a_panicking_variant() {
    let p = examples::figure1();
    let race = solve_portfolio(&p, &Budget::steps(200_000), &panic_victim_config(1));
    let solution = race.result.outcome.solution().expect("survivors win");
    assert!(solution.validate(&p).is_ok());
    let winner = race.winner.expect("a solved race has a winner");
    assert!(winner > 0, "variant 0 panicked and cannot win");
    let victim = race.reports[0].as_ref().expect("victim filed a report");
    match &victim.outcome {
        VariantOutcome::Panicked { message } => {
            assert!(
                message.contains("injected panic at step"),
                "captured message: {message}"
            );
        }
        other => panic!("victim should have panicked, reported {other:?}"),
    }
    assert_eq!(race.panicked(), 1);
}

#[test]
fn parallel_race_survives_a_panicking_variant() {
    let p = examples::figure1();
    let race = solve_portfolio(&p, &Budget::steps(200_000), &panic_victim_config(4));
    let solution = race.result.outcome.solution().expect("survivors win");
    assert!(solution.validate(&p).is_ok());
    assert!(race.winner.expect("winner") > 0);
    // The sprint's panic is discarded; the race proper re-runs variant 0
    // and records the panic there.
    let victim = race.reports[0].as_ref().expect("victim filed a report");
    assert!(victim.outcome.is_panicked());
}

#[test]
fn panic_in_every_variant_still_terminates() {
    let p = examples::figure1();
    let config = TelaConfig {
        fault_plan: Some(FaultPlan {
            panic_at_step: Some(0),
            victim_variant: None, // everyone dies
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    };
    let race = solve_portfolio(&p, &Budget::steps(200_000), &config);
    assert!(race.winner.is_none());
    assert!(!race.result.outcome.is_solved());
    assert_eq!(race.panicked(), race.reports.len());
}

#[test]
fn injected_cancellation_reads_as_a_lost_race() {
    let p = examples::figure1();
    let config = TelaConfig {
        fault_plan: Some(FaultPlan {
            cancel_at_step: Some(2),
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    };
    let race = solve_portfolio(&p, &Budget::steps(200_000), &config);
    assert!(race.winner.is_none());
    for report in race.reports.iter().flatten() {
        assert_eq!(
            report.outcome.solve_outcome(),
            Some(&SolveOutcome::BudgetExceeded)
        );
        assert!(report.stats.cancelled, "injected cancel mimics a lost race");
    }
}

#[test]
fn injected_stall_trips_the_deadline_deterministically() {
    let p = examples::figure1();
    let config = TelaConfig {
        fault_plan: Some(FaultPlan {
            stall_at_step: Some((3, Duration::from_secs(7200))),
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    };
    // A one-hour deadline no solver could really hit: only the injected
    // two-hour stall can trip it.
    let budget = Budget::steps(200_000).with_deadline(Instant::now() + Duration::from_secs(3600));
    let race = solve_portfolio(&p, &budget, &config);
    assert!(race.winner.is_none());
    for report in race.reports.iter().flatten() {
        assert_eq!(
            report.outcome.solve_outcome(),
            Some(&SolveOutcome::BudgetExceeded)
        );
        assert!(report.stats.steps <= 4, "stall fires within a few steps");
    }
}

#[test]
fn ladder_downgrades_when_a_fault_starves_every_stage() {
    let p = examples::figure1();
    let config = TelaConfig {
        fault_plan: Some(FaultPlan {
            cancel_at_step: Some(1),
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    };
    let result = EscalationLadder::new(config).solve(&p, &Budget::steps(200_000));
    let best = result.outcome.best_effort().expect("downgrade, not abort");
    assert!(best.partial.validate(&result.problem).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under every seeded fault plan the ladder terminates with one of
    /// the three ladder outcomes, and whatever placement it returns —
    /// full or partial — validates against the final problem.
    #[test]
    fn seeded_faults_never_break_the_ladder(seed in 0u64..512) {
        let plan = FaultPlan::from_seed(seed);
        let config = TelaConfig {
            fault_plan: Some(plan),
            ..TelaConfig::default()
        };
        let result = EscalationLadder::new(config).solve(
            &examples::figure1(),
            &Budget::steps(50_000),
        );
        match &result.outcome {
            SolveOutcome::Solved(s) => prop_assert!(s.validate(&result.problem).is_ok()),
            SolveOutcome::Infeasible => prop_assert!(result.certificate.is_some()),
            SolveOutcome::BestEffort(b) => {
                prop_assert!(b.partial.validate(&result.problem).is_ok());
            }
            other => prop_assert!(false, "ladder leaked {other:?}"),
        }
    }

    /// PR7 flat-solver equivalence, fault-injected flavor: on random
    /// small instances, whatever *definitive* answer the faulted ladder
    /// produces must agree with the complete CP oracle run clean on the
    /// ladder's final problem. Faults may downgrade (best-effort) but
    /// never flip Solved/Infeasible.
    #[test]
    fn faulted_runs_never_contradict_the_cp_oracle(
        seed in 0u64..512,
        problem in small_problem_strategy(),
    ) {
        let config = TelaConfig {
            fault_plan: Some(FaultPlan::from_seed(seed)),
            ..TelaConfig::default()
        };
        let result = EscalationLadder::new(config).solve(&problem, &Budget::steps(50_000));
        match &result.outcome {
            SolveOutcome::Solved(s) => prop_assert!(s.validate(&result.problem).is_ok()),
            SolveOutcome::Infeasible => {
                let (oracle, _) = solve_cp_only(&result.problem, &Budget::steps(1_000_000));
                prop_assert!(
                    matches!(oracle, SolveOutcome::Infeasible),
                    "faulted ladder claimed infeasible, clean oracle found {oracle:?}"
                );
            }
            SolveOutcome::BestEffort(b) => {
                prop_assert!(b.partial.validate(&result.problem).is_ok());
            }
            other => prop_assert!(false, "ladder leaked {other:?}"),
        }
    }
}

/// Small random instances in the brute-forceable regime (mirrors the
/// `tela-cp` equivalence suites).
fn small_problem_strategy() -> impl Strategy<Value = Problem> {
    let buffer = (
        0u32..6,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        });
    (prop::collection::vec(buffer, 1..6), 6u64..13)
        .prop_map(|(buffers, capacity)| Problem::new(buffers, capacity).expect("sizes fit"))
}
