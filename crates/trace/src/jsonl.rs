//! JSONL export and import of traces.
//!
//! One JSON object per line, hand-rolled on both sides (the workspace
//! is deliberately dependency-free):
//!
//! - line 1 — header: trace format version, clock mode, event count,
//!   and the wall-clock capture time. The capture time is the *only*
//!   nondeterministic part of a logical-clock trace, which is why the
//!   determinism tests compare everything after the first newline.
//! - then one line per event, in sequence order:
//!   `{"seq":..,"ts":..,"ph":"B","span":..,"layer":"..","name":"..","fields":{..}}`
//! - then one line per metric series:
//!   `{"metric":"..","type":"counter","value":..}` (gauges and
//!   histograms analogous).
//!
//! The parser accepts exactly the subset the writer emits (plus
//! whitespace), enough for `tela-viz` and the timeline renderer to
//! consume exported traces without a JSON library.

use std::fmt::Write as _;

use crate::event::{Event, Phase, Value};
use crate::metrics::{Histogram, MetricEntry, MetricValue};
use crate::tracer::{ClockMode, Trace};

/// Escapes `s` into `out` as a JSON string literal (with quotes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                // Always include a decimal point so the parser can tell
                // floats from integers on the way back in.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => push_json_str(out, s),
    }
}

/// Serializes a trace to JSONL. The first line is the wall-clock
/// header; every later line is deterministic for logical-clock traces.
pub fn write_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "{{\"trace\":\"tela\",\"version\":1,\"clock\":\"{}\",\"events\":{},\"captured_unix_ms\":{}}}",
        trace.clock.tag(),
        trace.events.len(),
        unix_ms
    );
    for event in &trace.events {
        out.push_str("{\"seq\":");
        let _ = write!(out, "{}", event.seq);
        out.push_str(",\"ts\":");
        let _ = write!(out, "{}", event.ts);
        out.push_str(",\"ph\":\"");
        out.push_str(event.phase.tag());
        out.push_str("\",\"span\":");
        let _ = write!(out, "{}", event.span);
        out.push_str(",\"layer\":");
        push_json_str(&mut out, &event.layer);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &event.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_value(&mut out, v);
        }
        out.push_str("}}\n");
    }
    for entry in &trace.metrics {
        out.push_str("{\"metric\":");
        push_json_str(&mut out, &entry.name);
        match &entry.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                );
                // Derived quantiles (see [`Histogram::quantile`] for the
                // error bound). The parser ignores them — they are
                // recomputable from the buckets — so the round trip is
                // unaffected.
                for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    let _ = write!(out, ",\"{tag}\":{}", h.quantile(q).unwrap_or(0));
                }
                out.push_str(",\"buckets\":[");
                for (i, b) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push(']');
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Error from [`parse_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where parsing failed (0 when the whole input is bad).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value from the subset the writer emits.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Int(i64),
    UInt(u64),
    Bool(bool),
    Null,
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, got {:?}",
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' in array, got {:?}",
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}'"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

fn json_to_value(json: &Json) -> Result<Value, String> {
    Ok(match json {
        Json::UInt(v) => Value::U64(*v),
        Json::Int(v) => Value::I64(*v),
        Json::Num(v) => Value::F64(*v),
        Json::Bool(v) => Value::Bool(*v),
        Json::Null => Value::F64(f64::NAN),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Arr(_) | Json::Obj(_) => return Err("nested field values unsupported".to_string()),
    })
}

fn parse_event(obj: &Json, line: usize) -> Result<Event, ParseError> {
    let err = |message: String| ParseError { line, message };
    let seq = obj
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("missing seq".to_string()))?;
    let ts = obj
        .get("ts")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("missing ts".to_string()))?;
    let phase = obj
        .get("ph")
        .and_then(Json::as_str)
        .and_then(Phase::from_tag)
        .ok_or_else(|| err("bad phase tag".to_string()))?;
    let span = obj
        .get("span")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("missing span".to_string()))?;
    let layer = obj
        .get("layer")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing layer".to_string()))?
        .to_string();
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing name".to_string()))?
        .to_string();
    let mut fields = Vec::new();
    if let Some(Json::Obj(pairs)) = obj.get("fields") {
        for (k, v) in pairs {
            let value = json_to_value(v).map_err(|message| ParseError { line, message })?;
            fields.push((k.clone().into(), value));
        }
    }
    Ok(Event {
        seq,
        ts,
        phase,
        span,
        layer: layer.into(),
        name: name.into(),
        fields,
    })
}

fn parse_metric(obj: &Json, line: usize) -> Result<MetricEntry, ParseError> {
    let err = |message: String| ParseError { line, message };
    let name = obj
        .get("metric")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing metric name".to_string()))?
        .to_string();
    let kind = obj
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing metric type".to_string()))?;
    let value = match kind {
        "counter" => MetricValue::Counter(
            obj.get("value")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("bad counter value".to_string()))?,
        ),
        "gauge" => {
            let v = match obj.get("value") {
                Some(Json::Int(v)) => *v,
                Some(Json::UInt(v)) => {
                    i64::try_from(*v).map_err(|_| err("gauge out of range".to_string()))?
                }
                _ => return Err(err("bad gauge value".to_string())),
            };
            MetricValue::Gauge(v)
        }
        "histogram" => {
            let count = obj
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("bad histogram".to_string()))?;
            let sum = obj.get("sum").and_then(Json::as_u64).unwrap_or(0);
            let min = obj.get("min").and_then(Json::as_u64).unwrap_or(0);
            let max = obj.get("max").and_then(Json::as_u64).unwrap_or(0);
            let mut buckets = [0u64; Histogram::BUCKETS];
            if let Some(Json::Arr(items)) = obj.get("buckets") {
                for (i, item) in items.iter().take(Histogram::BUCKETS).enumerate() {
                    buckets[i] = item.as_u64().unwrap_or(0);
                }
            }
            MetricValue::Histogram(Histogram {
                count,
                sum,
                min: if count == 0 { u64::MAX } else { min },
                max,
                buckets,
            })
        }
        other => return Err(err(format!("unknown metric type '{other}'"))),
    };
    Ok(MetricEntry { name, value })
}

/// Parses a trace previously produced by [`write_jsonl`].
pub fn parse_jsonl(input: &str) -> Result<Trace, ParseError> {
    let mut clock = ClockMode::Wall;
    let mut events = Vec::new();
    let mut metrics = Vec::new();
    let mut saw_header = false;
    for (idx, raw) in input.lines().enumerate() {
        let line = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let mut cursor = Cursor::new(raw);
        let obj = cursor
            .parse_value()
            .map_err(|message| ParseError { line, message })?;
        if !saw_header && obj.get("trace").is_some() {
            saw_header = true;
            if obj.get("clock").and_then(Json::as_str) == Some("logical") {
                clock = ClockMode::Logical;
            }
        } else if obj.get("metric").is_some() {
            metrics.push(parse_metric(&obj, line)?);
        } else if obj.get("seq").is_some() {
            events.push(parse_event(&obj, line)?);
        } else {
            return Err(ParseError {
                line,
                message: "line is neither header, event, nor metric".to_string(),
            });
        }
    }
    events.sort_by_key(|e| e.seq);
    Ok(Trace {
        clock,
        events,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn sample_trace() -> Trace {
        let t = Tracer::logical();
        let solve = t.begin("search", "solve", vec![("buffers".into(), 4usize.into())]);
        t.instant(
            "audit",
            "certificate",
            vec![
                ("kind".into(), "pair_pigeonhole".into()),
                ("feasible".into(), false.into()),
            ],
        );
        t.instant(
            "portfolio",
            "variant_panicked",
            vec![("message".into(), "boom \"quoted\"\nline2".into())],
        );
        t.end(
            solve,
            "search",
            "solve",
            vec![("outcome".into(), "solved".into())],
        );
        t.count("search.steps", 42);
        t.set_gauge("solution.peak", -1);
        t.observe("cp.conflict.clique_size", 3);
        t.observe("cp.conflict.clique_size", 17);
        t.snapshot().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let text = write_jsonl(&trace);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.clock, trace.clock);
        assert_eq!(parsed.events, trace.events);
        assert_eq!(parsed.metrics, trace.metrics);
    }

    #[test]
    fn header_is_first_line_and_holds_wall_clock() {
        let text = write_jsonl(&sample_trace());
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"trace\":\"tela\""));
        assert!(header.contains("\"clock\":\"logical\""));
        assert!(header.contains("captured_unix_ms"));
    }

    #[test]
    fn body_after_header_is_deterministic() {
        let text_a = write_jsonl(&sample_trace());
        let text_b = write_jsonl(&sample_trace());
        let body = |t: &str| t.split_once('\n').unwrap().1.to_string();
        assert_eq!(body(&text_a), body(&text_b));
    }

    #[test]
    fn string_escaping_survives() {
        let trace = sample_trace();
        let parsed = parse_jsonl(&write_jsonl(&trace)).unwrap();
        let panic_event = parsed
            .events
            .iter()
            .find(|e| e.name == "variant_panicked")
            .unwrap();
        assert_eq!(
            panic_event.field("message").and_then(Value::as_str),
            Some("boom \"quoted\"\nline2")
        );
    }

    #[test]
    fn histogram_lines_carry_quantiles() {
        let text = write_jsonl(&sample_trace());
        let hist_line = text
            .lines()
            .find(|l| l.contains("cp.conflict.clique_size"))
            .unwrap();
        // Samples 3 and 17: p50 -> bucket 1 upper bound 3, p99 -> 17.
        assert!(hist_line.contains("\"p50\":3"), "{hist_line}");
        assert!(hist_line.contains("\"p90\":17"), "{hist_line}");
        assert!(hist_line.contains("\"p99\":17"), "{hist_line}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_jsonl("not json").is_err());
        let err = parse_jsonl("{\"unrelated\":1}").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }
}
