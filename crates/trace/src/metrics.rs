//! A registry of named counters, gauges, and histograms.
//!
//! Metrics complement the event stream: where events record *what
//! happened when*, metrics aggregate *how much* — propagations,
//! backtracks by kind, conflict-clique sizes, per-variant outcomes,
//! ladder stage durations. The registry is a mutex-guarded `BTreeMap`
//! keyed by series name: cheap enough for the places it is used (span
//! boundaries, conflicts, stage transitions — not the propagation inner
//! loop, whose counts are sampled from the solver's own counters at
//! span end) and deterministic to snapshot, because `BTreeMap` iterates
//! in name order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Power-of-two bucketed histogram summary.
///
/// Bucket `i` counts values `v` with `floor(log2(max(v, 1))) == i`,
/// capped at the last bucket. Good enough to see the shape of
/// conflict-clique sizes or stage durations without storing samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log2 bucket counts.
    pub buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of log2 buckets (values above `2^15` share the last one).
    pub const BUCKETS: usize = 16;

    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; Histogram::BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.max(1).leading_zeros() as usize - 1).min(Histogram::BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), estimated from the log2
    /// buckets; `None` when the histogram is empty.
    ///
    /// The estimate is the inclusive upper bound of the bucket holding
    /// the `ceil(q * count)`-th smallest value, clamped to the observed
    /// `[min, max]`. Because bucket `i` spans `[2^i, 2^(i+1))`, the
    /// reported value is never below the true quantile and at most 2×
    /// above it (exact for counts of 0 and 1, which share bucket 0 with
    /// upper bound 1) — tight enough to gate on order-of-magnitude
    /// latency shifts, which is all a 16-bucket summary can promise.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The overflow bucket has no upper bound; `max` is the
                // only honest estimate there (the 2× bound does not
                // hold for it).
                if i == Histogram::BUCKETS - 1 {
                    return Some(self.max);
                }
                let upper = (1u64 << (i + 1)) - 1;
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// One metric's aggregated value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins level.
    Gauge(i64),
    /// A distribution summary.
    Histogram(Histogram),
}

impl MetricValue {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is one.
    pub fn as_histogram(&self) -> Option<&Histogram> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A named snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// The series name (dot-separated, e.g. `search.backtracks.minor`).
    pub name: String,
    /// The aggregated value at snapshot time.
    pub value: MetricValue,
}

/// Thread-safe registry of named metric series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn with_series(&self, f: impl FnOnce(&mut BTreeMap<String, MetricValue>)) {
        // A poisoned registry only means some panicking thread died
        // mid-update; the counters themselves are still usable.
        let mut series = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut series);
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    ///
    /// A series never changes type: if `name` already names a gauge or
    /// histogram, the update is dropped rather than clobbering the
    /// existing value (same rule as [`MetricsRegistry::add_gauge`] and
    /// [`MetricsRegistry::observe`]).
    pub fn add(&self, name: &str, delta: u64) {
        self.with_series(|series| {
            if let MetricValue::Counter(v) = series
                .entry(name.to_string())
                .or_insert(MetricValue::Counter(0))
            {
                *v += delta;
            }
        });
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.with_series(|series| {
            series.insert(name.to_string(), MetricValue::Gauge(value));
        });
    }

    /// Adds `delta` (possibly negative) to the gauge `name`, creating it
    /// at zero first. Lets concurrent holders track a level — a queue
    /// depth, in-flight request count — without an external read-modify-
    /// write race: the adjustment happens under the registry lock.
    ///
    /// If `name` already names a counter or histogram, the delta is
    /// dropped: a type conflict must not silently discard the existing
    /// series.
    pub fn add_gauge(&self, name: &str, delta: i64) {
        self.with_series(|series| {
            if let MetricValue::Gauge(v) = series
                .entry(name.to_string())
                .or_insert(MetricValue::Gauge(0))
            {
                *v += delta;
            }
        });
    }

    /// Records `value` into the histogram `name`, creating it if needed.
    /// Dropped if `name` already names a counter or gauge (see
    /// [`MetricsRegistry::add`]).
    pub fn observe(&self, name: &str, value: u64) {
        self.with_series(|series| {
            if let MetricValue::Histogram(h) = series
                .entry(name.to_string())
                .or_insert(MetricValue::Histogram(Histogram::new()))
            {
                h.record(value);
            }
        });
    }

    /// The current value of the counter `name`, if it exists and is a
    /// counter. A live read for consumers that steer on observed
    /// progress mid-run (the adaptive portfolio's bandit scheduler reads
    /// `cp.propagations` between rounds) without the allocation cost of
    /// a full [`MetricsRegistry::snapshot`].
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let series = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        series.get(name).and_then(MetricValue::as_counter)
    }

    /// A name-ordered snapshot of every series.
    pub fn snapshot(&self) -> Vec<MetricEntry> {
        let series = self
            .series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        series
            .iter()
            .map(|(name, value)| MetricEntry {
                name: name.clone(),
                value: *value,
            })
            .collect()
    }
}

/// Renders a snapshot as an aligned plain-text summary table.
pub fn render_metrics(entries: &[MetricEntry]) -> String {
    let name_w = entries
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0)
        .max("series".len());
    let mut out = format!("{:<name_w$}  value\n", "series");
    for entry in entries {
        let value = match &entry.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => format!("{v} (gauge)"),
            MetricValue::Histogram(h) => format!(
                "n={} sum={} min={} max={} mean={:.2}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
            ),
        };
        out.push_str(&format!("{:<name_w$}  {value}\n", entry.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.add("a", 2);
        m.add("a", 3);
        m.add("b", 1);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[0].value.as_counter(), Some(5));
        assert_eq!(snap[1].value.as_counter(), Some(1));
    }

    #[test]
    fn counter_value_reads_live() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter_value("a"), None);
        m.add("a", 2);
        assert_eq!(m.counter_value("a"), Some(2));
        m.add("a", 3);
        assert_eq!(m.counter_value("a"), Some(5));
        // Non-counter series read as None.
        m.set_gauge("g", 1);
        assert_eq!(m.counter_value("g"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("g", 4);
        m.set_gauge("g", -2);
        assert_eq!(m.snapshot()[0].value, MetricValue::Gauge(-2));
    }

    #[test]
    fn add_gauge_accumulates_deltas() {
        let m = MetricsRegistry::new();
        m.add_gauge("depth", 3);
        m.add_gauge("depth", 2);
        m.add_gauge("depth", -4);
        assert_eq!(m.snapshot()[0].value, MetricValue::Gauge(1));
        // set_gauge still overwrites, and add_gauge adjusts from there.
        m.set_gauge("depth", 10);
        m.add_gauge("depth", -3);
        assert_eq!(m.snapshot()[0].value, MetricValue::Gauge(7));
    }

    #[test]
    fn type_conflicts_keep_the_first_registration() {
        let m = MetricsRegistry::new();
        m.add("c", 5);
        m.add_gauge("c", -3);
        m.observe("c", 9);
        assert_eq!(m.snapshot()[0].value, MetricValue::Counter(5));
        let m = MetricsRegistry::new();
        m.add_gauge("g", 2);
        m.add("g", 7);
        m.observe("g", 9);
        assert_eq!(m.snapshot()[0].value, MetricValue::Gauge(2));
        // set_gauge is the explicit overwrite and still replaces.
        m.set_gauge("g", -1);
        assert_eq!(m.snapshot()[0].value, MetricValue::Gauge(-1));
    }

    #[test]
    fn histogram_summary() {
        let m = MetricsRegistry::new();
        for v in [1, 2, 3, 100] {
            m.observe("h", v);
        }
        let snap = m.snapshot();
        let h = snap[0].value.as_histogram().unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 106);
        assert_eq!((h.min, h.max), (1, 100));
        assert!((h.mean() - 26.5).abs() < 1e-9);
        // 1 -> bucket 0; 2,3 -> bucket 1; 100 -> bucket 6.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[6], 1);
    }

    #[test]
    fn quantiles_within_one_bucket_of_truth() {
        let m = MetricsRegistry::new();
        // 100 values 1..=100: true p50 = 50, p90 = 90, p99 = 99.
        for v in 1..=100 {
            m.observe("h", v);
        }
        let snap = m.snapshot();
        let h = snap[0].value.as_histogram().unwrap();
        // 50 lands in bucket 5 ([32, 64)) -> upper bound 63.
        assert_eq!(h.quantile(0.5), Some(63));
        // 90 and 99 land in bucket 6 ([64, 128)) -> clamped to max 100.
        assert_eq!(h.quantile(0.9), Some(100));
        assert_eq!(h.quantile(0.99), Some(100));
        // Never below the true quantile, at most 2x above.
        for (q, truth) in [(0.5, 50u64), (0.9, 90), (0.99, 99)] {
            let est = h.quantile(q).unwrap();
            assert!(est >= truth && est <= truth * 2, "q={q}: {est} vs {truth}");
        }
        // Edges: empty -> None; single value is exact; q clamps.
        assert_eq!(Histogram::new().quantile(0.5), None);
        let m = MetricsRegistry::new();
        m.observe("one", 7);
        let snap = m.snapshot();
        let one = snap[0].value.as_histogram().unwrap();
        assert_eq!(one.quantile(0.0), Some(7));
        assert_eq!(one.quantile(1.0), Some(7));
        // Overflow bucket reports max (the 2x bound cannot hold there).
        let m = MetricsRegistry::new();
        m.observe("big", 1 << 20);
        let snap = m.snapshot();
        let big = snap[0].value.as_histogram().unwrap();
        assert_eq!(big.quantile(0.5), Some(1 << 20));
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let m = MetricsRegistry::new();
        m.add("z", 1);
        m.add("a", 1);
        m.add("m", 1);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn render_includes_every_series() {
        let m = MetricsRegistry::new();
        m.add("steps", 12);
        m.observe("clique", 3);
        m.set_gauge("peak", 7);
        let text = render_metrics(&m.snapshot());
        assert!(text.contains("steps"));
        assert!(text.contains("12"));
        assert!(text.contains("n=1"));
        assert!(text.contains("(gauge)"));
    }
}
