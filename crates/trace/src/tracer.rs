//! The [`Tracer`] handle and its shared sink.
//!
//! A `Tracer` is a cheap, cloneable handle; all clones share one event
//! sink, one sequence counter, and one [`MetricsRegistry`]. A disabled
//! tracer holds no allocation at all, and every recording method starts
//! with the same one-branch `enabled()` check, so the disabled path
//! costs a predicted-not-taken branch and nothing else — callers that
//! would have to build strings or vectors for the fields should guard
//! with [`Tracer::enabled`] first.
//!
//! Two clocks are supported: [`ClockMode::Wall`] stamps events with
//! nanoseconds since trace start, while [`ClockMode::Logical`] stamps
//! each event with its own sequence number. Logical traces from a
//! deterministic (single-threaded, seeded) solve are byte-identical
//! across runs, which is what makes timelines replayable and diffable
//! in CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, FieldName, Phase, SpanId, Value};
use crate::metrics::{MetricEntry, MetricsRegistry};

/// How event timestamps are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Nanoseconds since the tracer was created. Real durations, but
    /// different on every run.
    Wall,
    /// The event's own sequence number. Deterministic: identical solves
    /// produce identical traces.
    Logical,
}

impl ClockMode {
    /// The tag used in the JSONL header (`"wall"` / `"logical"`).
    pub fn tag(self) -> &'static str {
        match self {
            ClockMode::Wall => "wall",
            ClockMode::Logical => "logical",
        }
    }
}

#[derive(Debug)]
struct Shared {
    mode: ClockMode,
    start: Instant,
    seq: AtomicU64,
    sink: Mutex<Vec<Event>>,
    metrics: MetricsRegistry,
}

impl Shared {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn ts_for(&self, seq: u64) -> u64 {
        match self.mode {
            ClockMode::Logical => seq,
            ClockMode::Wall => self.start.elapsed().as_nanos() as u64,
        }
    }

    fn push(&self, event: Event) {
        self.sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event);
    }
}

/// A complete snapshot of a trace: events in sequence order plus the
/// final metrics.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The clock mode the trace was recorded under.
    pub clock: ClockMode,
    /// All events, sorted by `seq`.
    pub events: Vec<Event>,
    /// Name-ordered metric series.
    pub metrics: Vec<MetricEntry>,
}

/// Cheap, cloneable tracing handle.
///
/// `Tracer::disabled()` (also `Default`) records nothing and allocates
/// nothing; enabled tracers share their sink across clones so every
/// layer of a solve writes into one timeline.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
    /// Fields appended to every event this handle records (see
    /// [`Tracer::with_field`]). `None` for plain handles, so the common
    /// case pays nothing — not even an empty-slice iteration.
    common: Option<Arc<Vec<(FieldName, Value)>>>,
}

impl Tracer {
    /// A tracer that records nothing. All methods are near-free no-ops.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            common: None,
        }
    }

    fn with_mode(mode: ClockMode) -> Self {
        Tracer {
            inner: Some(Arc::new(Shared {
                mode,
                start: Instant::now(),
                seq: AtomicU64::new(0),
                sink: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
            })),
            common: None,
        }
    }

    /// An enabled tracer using the deterministic logical clock.
    pub fn logical() -> Self {
        Tracer::with_mode(ClockMode::Logical)
    }

    /// An enabled tracer using wall-clock timestamps.
    pub fn wall() -> Self {
        Tracer::with_mode(ClockMode::Wall)
    }

    /// Builds a tracer from the `TELA_TRACE` environment variable:
    /// unset/`0` → disabled, `logical` → logical clock, anything else
    /// (`1`, `wall`, ...) → wall clock.
    pub fn from_env() -> Self {
        match std::env::var("TELA_TRACE") {
            Err(_) => Tracer::disabled(),
            Ok(v) => match v.as_str() {
                "" | "0" => Tracer::disabled(),
                "logical" => Tracer::logical(),
                _ => Tracer::wall(),
            },
        }
    }

    /// True when this tracer records events. Call sites that must build
    /// field values (strings, vectors) should check this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle that appends `(name, value)` to every event it records,
    /// on top of any fields inherited from `self`. The sink, sequence
    /// counter, and metrics registry stay shared — only the event
    /// decoration differs — so a server can hand each request a
    /// `tracer.with_field("request", id)` handle and every span and
    /// instant the solve emits through it carries the request id,
    /// joinable across request → ladder stage → CP engine.
    ///
    /// On a disabled tracer this is free and returns another disabled
    /// handle.
    pub fn with_field(&self, name: impl Into<FieldName>, value: impl Into<Value>) -> Tracer {
        if self.inner.is_none() {
            return Tracer::disabled();
        }
        let mut fields: Vec<(FieldName, Value)> =
            self.common.as_deref().cloned().unwrap_or_default();
        fields.push((name.into(), value.into()));
        Tracer {
            inner: self.inner.clone(),
            common: Some(Arc::new(fields)),
        }
    }

    /// Appends this handle's common fields (if any) to `fields`.
    #[inline]
    fn decorate(&self, fields: &mut Vec<(FieldName, Value)>) {
        if let Some(common) = &self.common {
            fields.extend(common.iter().cloned());
        }
    }

    /// The clock mode, or `None` when disabled. Call sites recording
    /// real wall-clock durations as metrics should skip them under
    /// [`ClockMode::Logical`] to keep deterministic traces diffable.
    pub fn clock(&self) -> Option<ClockMode> {
        self.inner.as_ref().map(|s| s.mode)
    }

    /// Records a point event.
    #[inline]
    pub fn instant(
        &self,
        layer: &'static str,
        name: &'static str,
        mut fields: Vec<(FieldName, Value)>,
    ) {
        if let Some(shared) = &self.inner {
            self.decorate(&mut fields);
            let seq = shared.next_seq();
            shared.push(Event {
                seq,
                ts: shared.ts_for(seq),
                phase: Phase::Instant,
                span: 0,
                layer: layer.into(),
                name: name.into(),
                fields,
            });
        }
    }

    /// Opens a span; the returned handle must be passed to [`Tracer::end`].
    #[inline]
    pub fn begin(
        &self,
        layer: &'static str,
        name: &'static str,
        mut fields: Vec<(FieldName, Value)>,
    ) -> SpanId {
        match &self.inner {
            None => SpanId::NULL,
            Some(shared) => {
                self.decorate(&mut fields);
                let seq = shared.next_seq();
                let ts = shared.ts_for(seq);
                shared.push(Event {
                    seq,
                    ts,
                    phase: Phase::Begin,
                    span: seq,
                    layer: layer.into(),
                    name: name.into(),
                    fields,
                });
                SpanId { id: seq, ts }
            }
        }
    }

    /// Closes a span opened by [`Tracer::begin`], recording a `dur`
    /// field (in clock units) alongside any caller-supplied fields.
    #[inline]
    pub fn end(
        &self,
        span: SpanId,
        layer: &'static str,
        name: &'static str,
        mut fields: Vec<(FieldName, Value)>,
    ) {
        if span.is_null() {
            return;
        }
        if let Some(shared) = &self.inner {
            self.decorate(&mut fields);
            let seq = shared.next_seq();
            let ts = shared.ts_for(seq);
            fields.push(("dur".into(), Value::U64(ts.saturating_sub(span.ts))));
            shared.push(Event {
                seq,
                ts,
                phase: Phase::End,
                span: span.id,
                layer: layer.into(),
                name: name.into(),
                fields,
            });
        }
    }

    /// Adds `delta` to the counter `name` (no-op when disabled).
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(shared) = &self.inner {
            shared.metrics.add(name, delta);
        }
    }

    /// Sets the gauge `name` (no-op when disabled).
    #[inline]
    pub fn set_gauge(&self, name: &str, value: i64) {
        if let Some(shared) = &self.inner {
            shared.metrics.set_gauge(name, value);
        }
    }

    /// Adds `delta` (possibly negative) to the gauge `name` (no-op when
    /// disabled). See [`MetricsRegistry::add_gauge`].
    #[inline]
    pub fn add_gauge(&self, name: &str, delta: i64) {
        if let Some(shared) = &self.inner {
            shared.metrics.add_gauge(name, delta);
        }
    }

    /// Records `value` into the histogram `name` (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(shared) = &self.inner {
            shared.metrics.observe(name, value);
        }
    }

    /// The current value of the counter `name` (`None` when disabled or
    /// the series is not a counter). See
    /// [`MetricsRegistry::counter_value`].
    #[inline]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|shared| shared.metrics.counter_value(name))
    }

    /// A per-thread buffer that batches events locally and flushes them
    /// into the shared sink in one lock acquisition. Sequence numbers
    /// are still drawn from the shared counter at record time, so the
    /// merged trace stays totally ordered no matter when buffers flush.
    pub fn buffer(&self) -> TraceBuffer {
        TraceBuffer {
            tracer: self.clone(),
            pending: Vec::new(),
        }
    }

    /// Snapshots the trace so far: events sorted by seq plus metrics.
    /// Returns `None` for a disabled tracer.
    pub fn snapshot(&self) -> Option<Trace> {
        let shared = self.inner.as_ref()?;
        let mut events = shared
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        events.sort_by_key(|e| e.seq);
        Some(Trace {
            clock: shared.mode,
            events,
            metrics: shared.metrics.snapshot(),
        })
    }
}

/// Per-thread event buffer created by [`Tracer::buffer`].
///
/// Worker threads record through the buffer to avoid contending on the
/// shared sink lock per event; the batch is flushed on [`flush`]
/// (or drop). Metrics go straight to the shared registry.
///
/// [`flush`]: TraceBuffer::flush
#[derive(Debug)]
pub struct TraceBuffer {
    tracer: Tracer,
    pending: Vec<Event>,
}

impl TraceBuffer {
    /// True when the owning tracer records events.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The tracer this buffer flushes into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records a point event into the local batch.
    #[inline]
    pub fn instant(
        &mut self,
        layer: &'static str,
        name: &'static str,
        mut fields: Vec<(FieldName, Value)>,
    ) {
        if let Some(shared) = &self.tracer.inner {
            self.tracer.decorate(&mut fields);
            let seq = shared.next_seq();
            self.pending.push(Event {
                seq,
                ts: shared.ts_for(seq),
                phase: Phase::Instant,
                span: 0,
                layer: layer.into(),
                name: name.into(),
                fields,
            });
        }
    }

    /// Opens a span recorded into the local batch.
    #[inline]
    pub fn begin(
        &mut self,
        layer: &'static str,
        name: &'static str,
        mut fields: Vec<(FieldName, Value)>,
    ) -> SpanId {
        match &self.tracer.inner {
            None => SpanId::NULL,
            Some(shared) => {
                self.tracer.decorate(&mut fields);
                let seq = shared.next_seq();
                let ts = shared.ts_for(seq);
                self.pending.push(Event {
                    seq,
                    ts,
                    phase: Phase::Begin,
                    span: seq,
                    layer: layer.into(),
                    name: name.into(),
                    fields,
                });
                SpanId { id: seq, ts }
            }
        }
    }

    /// Closes a span, recording `dur` like [`Tracer::end`].
    #[inline]
    pub fn end(
        &mut self,
        span: SpanId,
        layer: &'static str,
        name: &'static str,
        mut fields: Vec<(FieldName, Value)>,
    ) {
        if span.is_null() {
            return;
        }
        if let Some(shared) = &self.tracer.inner {
            self.tracer.decorate(&mut fields);
            let seq = shared.next_seq();
            let ts = shared.ts_for(seq);
            fields.push(("dur".into(), Value::U64(ts.saturating_sub(span.ts))));
            self.pending.push(Event {
                seq,
                ts,
                phase: Phase::End,
                span: span.id,
                layer: layer.into(),
                name: name.into(),
                fields,
            });
        }
    }

    /// Moves all batched events into the shared sink.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if let Some(shared) = &self.tracer.inner {
            let mut sink = shared
                .sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            sink.append(&mut self.pending);
        } else {
            self.pending.clear();
        }
    }
}

impl Drop for TraceBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricValue;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let span = t.begin("test", "s", vec![]);
        assert!(span.is_null());
        t.end(span, "test", "s", vec![]);
        t.instant("test", "i", vec![]);
        t.count("c", 1);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn logical_clock_is_seq() {
        let t = Tracer::logical();
        let span = t.begin("test", "s", vec![]);
        t.instant("test", "i", vec![("k".into(), Value::U64(1))]);
        t.end(span, "test", "s", vec![]);
        let trace = t.snapshot().unwrap();
        assert_eq!(trace.clock, ClockMode::Logical);
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        for e in &trace.events {
            assert_eq!(e.ts, e.seq);
        }
        let end = &trace.events[2];
        assert_eq!(end.phase, Phase::End);
        assert_eq!(end.span, 1);
        // dur = end ts (3) - begin ts (1).
        assert_eq!(end.field("dur").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::logical();
        let t2 = t.clone();
        t.instant("a", "x", vec![]);
        t2.instant("b", "y", vec![]);
        let trace = t.snapshot().unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].layer, "a");
        assert_eq!(trace.events[1].layer, "b");
    }

    #[test]
    fn buffer_flushes_with_global_order() {
        let t = Tracer::logical();
        let mut buf = t.buffer();
        t.instant("main", "before", vec![]);
        buf.instant("worker", "work", vec![]);
        t.instant("main", "after", vec![]);
        // Worker event not yet visible.
        assert_eq!(t.snapshot().unwrap().events.len(), 2);
        buf.flush();
        let trace = t.snapshot().unwrap();
        let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_ref()).collect();
        // Sorted by seq: the worker event interleaves where it happened.
        assert_eq!(names, vec!["before", "work", "after"]);
    }

    #[test]
    fn buffer_spans_record_dur() {
        let t = Tracer::logical();
        let mut buf = t.buffer();
        let span = buf.begin("worker", "s", vec![]);
        buf.instant("worker", "i", vec![]);
        buf.end(span, "worker", "s", vec![]);
        drop(buf);
        let trace = t.snapshot().unwrap();
        assert_eq!(
            trace.events[2].field("dur").and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn metrics_flow_through_tracer() {
        let t = Tracer::logical();
        t.count("c", 2);
        t.count("c", 3);
        t.set_gauge("g", 7);
        t.add_gauge("g", -2);
        t.observe("h", 4);
        let trace = t.snapshot().unwrap();
        assert_eq!(trace.metrics.len(), 3);
        assert_eq!(trace.metrics[0].value.as_counter(), Some(5));
        assert_eq!(trace.metrics[1].value, MetricValue::Gauge(5));
        // Disabled tracers drop gauge deltas without side effects.
        Tracer::disabled().add_gauge("g", 1);
    }

    #[test]
    fn with_field_decorates_every_event() {
        let t = Tracer::logical();
        let req = t.with_field("request", 7u64);
        let span = req.begin("server", "request", vec![]);
        req.instant("server", "tick", vec![("k".into(), Value::U64(1))]);
        req.end(span, "server", "request", vec![]);
        // Buffers created from the decorated handle inherit the field.
        let mut buf = req.buffer();
        buf.instant("worker", "w", vec![]);
        buf.flush();
        // The plain handle stays undecorated and shares the sink.
        t.instant("main", "plain", vec![]);
        let trace = t.snapshot().unwrap();
        assert_eq!(trace.events.len(), 5);
        for e in &trace.events[..4] {
            assert_eq!(e.field("request").and_then(Value::as_u64), Some(7));
        }
        assert!(trace.events[4].field("request").is_none());
        // Caller fields come first, common fields after, dur last.
        let end = &trace.events[2];
        assert_eq!(end.fields.last().unwrap().0, "dur");
    }

    #[test]
    fn with_field_stacks_and_is_free_when_disabled() {
        let t = Tracer::logical();
        let inner = t.with_field("a", 1u64).with_field("b", 2u64);
        inner.instant("test", "i", vec![]);
        let e = &t.snapshot().unwrap().events[0];
        assert_eq!(e.field("a").and_then(Value::as_u64), Some(1));
        assert_eq!(e.field("b").and_then(Value::as_u64), Some(2));

        let d = Tracer::disabled().with_field("a", 1u64);
        assert!(!d.enabled());
        assert!(d.common.is_none());
    }

    #[test]
    fn wall_clock_mode_tagged() {
        let t = Tracer::wall();
        t.instant("test", "i", vec![]);
        let trace = t.snapshot().unwrap();
        assert_eq!(trace.clock, ClockMode::Wall);
        assert_eq!(trace.clock.tag(), "wall");
    }
}
