//! The structured event vocabulary of a solve trace.
//!
//! A trace is a flat, seq-ordered list of [`Event`]s. Each event names a
//! *layer* (the subsystem that emitted it: `search`, `cp`, `portfolio`,
//! `ladder`, `audit`, `heuristic`), an event *name* within that layer,
//! and a small bag of typed fields. Span begin/end pairs share a span id
//! so timelines can reconstruct nesting and durations.

use std::borrow::Cow;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, addresses, sizes, ticks).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string (outcome tags, variant names, panic messages).
    Str(String),
}

impl Value {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Whether an event is a point, a span opening, or a span closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point event with no duration.
    Instant,
    /// Opens a span; the matching [`Phase::End`] shares its span id.
    Begin,
    /// Closes a span.
    End,
}

impl Phase {
    /// One-letter tag used by the JSONL encoding (`I`/`B`/`E`).
    pub fn tag(self) -> &'static str {
        match self {
            Phase::Instant => "I",
            Phase::Begin => "B",
            Phase::End => "E",
        }
    }

    /// Parses the one-letter JSONL tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "I" => Some(Phase::Instant),
            "B" => Some(Phase::Begin),
            "E" => Some(Phase::End),
            _ => None,
        }
    }
}

/// A field name: borrowed at record time, owned after parsing a trace
/// back from JSONL.
pub type FieldName = Cow<'static, str>;

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number (1-based, unique, totally ordered).
    pub seq: u64,
    /// Timestamp: logical tick (== `seq` under the deterministic clock)
    /// or nanoseconds since trace start under the wall clock.
    pub ts: u64,
    /// Point / span-begin / span-end.
    pub phase: Phase,
    /// Span id shared by a begin/end pair; `0` for instants.
    pub span: u64,
    /// Emitting subsystem (`search`, `cp`, `portfolio`, `ladder`, ...).
    pub layer: FieldName,
    /// Event name within the layer.
    pub name: FieldName,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(FieldName, Value)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Handle for an open span: carries the span id and the begin timestamp
/// so the matching end event can record a duration.
///
/// A `SpanId` from a disabled tracer is [`SpanId::NULL`]; ending it is a
/// no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    /// The span's unique id (the begin event's seq), or 0 when disabled.
    pub id: u64,
    /// Timestamp of the begin event.
    pub ts: u64,
}

impl SpanId {
    /// The null span produced by a disabled tracer.
    pub const NULL: SpanId = SpanId { id: 0, ts: 0 };

    /// Returns true for the null span.
    pub fn is_null(self) -> bool {
        self.id == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".to_string()));
        assert_eq!(Value::U64(7).as_u64(), Some(7));
        assert_eq!(Value::I64(7).as_u64(), Some(7));
        assert_eq!(Value::I64(-7).as_u64(), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::U64(1).as_str(), None);
    }

    #[test]
    fn phase_tags_round_trip() {
        for phase in [Phase::Instant, Phase::Begin, Phase::End] {
            assert_eq!(Phase::from_tag(phase.tag()), Some(phase));
        }
        assert_eq!(Phase::from_tag("X"), None);
    }

    #[test]
    fn event_field_lookup() {
        let e = Event {
            seq: 1,
            ts: 1,
            phase: Phase::Instant,
            span: 0,
            layer: "test".into(),
            name: "e".into(),
            fields: vec![("k".into(), Value::U64(9))],
        };
        assert_eq!(e.field("k").and_then(Value::as_u64), Some(9));
        assert!(e.field("missing").is_none());
    }

    #[test]
    fn null_span() {
        assert!(SpanId::NULL.is_null());
        assert!(!SpanId { id: 3, ts: 0 }.is_null());
    }
}
