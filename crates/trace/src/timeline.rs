//! Compact plain-text timeline rendering.
//!
//! Turns a seq-ordered trace into an indented timeline: span begins
//! open a nesting level (`+`), span ends close it (`-`, with the
//! recorded duration), instants are points (`.`). Under the logical
//! clock the output is fully deterministic, so two timelines can be
//! diffed line-by-line in CI.

use crate::event::{Phase, Value};
use crate::tracer::{ClockMode, Trace};

fn render_fields(event: &crate::event::Event) -> String {
    let mut out = String::new();
    for (k, v) in &event.fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        match v {
            Value::Str(s) if s.contains(' ') || s.contains('\n') => {
                out.push('"');
                out.push_str(&s.replace('\n', "\\n"));
                out.push('"');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    out
}

/// Renders a trace's events as an indented text timeline.
pub fn render_timeline(trace: &Trace) -> String {
    let unit = match trace.clock {
        ClockMode::Wall => "ns",
        ClockMode::Logical => "tick",
    };
    let mut out = format!(
        "timeline ({} events, {} clock, ts in {unit})\n",
        trace.events.len(),
        trace.clock.tag()
    );
    let ts_w = trace
        .events
        .iter()
        .map(|e| e.ts.to_string().len())
        .max()
        .unwrap_or(1)
        .max(2);
    let mut depth: usize = 0;
    for event in &trace.events {
        let (marker, this_depth) = match event.phase {
            Phase::Begin => {
                let d = depth;
                depth += 1;
                ("+", d)
            }
            Phase::End => {
                depth = depth.saturating_sub(1);
                ("-", depth)
            }
            Phase::Instant => (".", depth),
        };
        out.push_str(&format!(
            "{:>ts_w$}  {}{} {}.{}{}\n",
            event.ts,
            "  ".repeat(this_depth),
            marker,
            event.layer,
            event.name,
            render_fields(event)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn timeline_nests_spans() {
        let t = Tracer::logical();
        let outer = t.begin("ladder", "stage", vec![("stage".into(), "greedy".into())]);
        let inner = t.begin("search", "solve", vec![]);
        t.instant("cp", "conflict", vec![("clique".into(), 3usize.into())]);
        t.end(inner, "search", "solve", vec![]);
        t.end(outer, "ladder", "stage", vec![]);
        let text = render_timeline(&t.snapshot().unwrap());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("timeline (5 events, logical clock"));
        assert!(lines[1].contains("+ ladder.stage stage=greedy"));
        assert!(lines[2].contains("  + search.solve"));
        assert!(lines[3].contains("    . cp.conflict clique=3"));
        assert!(lines[4].contains("  - search.solve dur=2"));
        assert!(lines[5].contains("- ladder.stage dur=4"));
    }

    #[test]
    fn quoted_string_fields() {
        let t = Tracer::logical();
        t.instant(
            "portfolio",
            "variant_panicked",
            vec![("message".into(), "boom with spaces".into())],
        );
        let text = render_timeline(&t.snapshot().unwrap());
        assert!(text.contains("message=\"boom with spaces\""));
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            let t = Tracer::logical();
            let s = t.begin("search", "solve", vec![]);
            t.end(s, "search", "solve", vec![]);
            render_timeline(&t.snapshot().unwrap())
        };
        assert_eq!(build(), build());
    }
}
