//! `tela-trace`: structured solver tracing and metrics for the
//! TelaMalloc reproduction.
//!
//! The crate is a zero-external-dependency observability layer shared
//! by every solver crate in the workspace:
//!
//! - [`Tracer`] — a cheap cloneable handle; clones share one event sink,
//!   one sequence counter, and one [`MetricsRegistry`]. A disabled
//!   tracer ([`Tracer::disabled`]) holds no allocation and every
//!   recording method reduces to a single branch, which is what keeps
//!   the CP propagation loop allocation-free when tracing is off.
//! - [`Event`] / [`SpanId`] — the flat, seq-ordered record vocabulary.
//!   Span begin/end pairs share an id so timelines can reconstruct
//!   nesting and durations.
//! - [`TraceBuffer`] — per-thread batching for portfolio workers:
//!   sequence numbers come from the shared atomic counter at record
//!   time, so batches merge into a totally ordered trace regardless of
//!   when they flush.
//! - [`MetricsRegistry`] — named counters, gauges, and log2-bucketed
//!   histograms, snapshotted in deterministic name order.
//! - [`write_jsonl`] / [`parse_jsonl`] — hand-rolled JSONL export and
//!   import; only the first (header) line carries wall-clock data, so
//!   logical-clock traces are byte-identical across identical solves.
//! - [`render_timeline`] / [`render_metrics`] — compact text renderers
//!   for humans and CI diffs.
//!
//! # Example
//!
//! ```
//! use tela_trace::{render_timeline, write_jsonl, Tracer};
//!
//! let tracer = Tracer::logical();
//! let solve = tracer.begin("search", "solve", vec![("buffers".into(), 4usize.into())]);
//! tracer.count("search.steps", 17);
//! tracer.end(solve, "search", "solve", vec![("outcome".into(), "solved".into())]);
//!
//! let trace = tracer.snapshot().unwrap();
//! let jsonl = write_jsonl(&trace);
//! assert!(jsonl.lines().count() >= 3); // header + 2 events + metrics
//! println!("{}", render_timeline(&trace));
//! ```

#![warn(missing_docs)]

mod event;
mod jsonl;
mod metrics;
mod timeline;
mod tracer;

pub use event::{Event, FieldName, Phase, SpanId, Value};
pub use jsonl::{parse_jsonl, write_jsonl, ParseError};
pub use metrics::{render_metrics, Histogram, MetricEntry, MetricValue, MetricsRegistry};
pub use timeline::render_timeline;
pub use tracer::{ClockMode, Trace, TraceBuffer, Tracer};
