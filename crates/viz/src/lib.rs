//! SVG renderings of allocation problems and packings.
//!
//! The paper communicates almost everything through two pictures: the
//! time × address rectangle packing (Figures 1, 4, 8, 19) and the
//! live-memory-over-time line chart (Figure 3). This crate renders both
//! as self-contained SVG strings — no dependencies, suitable for writing
//! straight to disk or embedding in reports.
//!
//! # Example
//!
//! ```
//! use tela_model::examples;
//!
//! let problem = examples::figure1();
//! let svg = tela_viz::render_problem(&problem);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("</svg>"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;

use tela_model::{Problem, Solution};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct Style {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Margin around the plot area.
    pub margin: u32,
    /// Show buffer indices inside rectangles (only readable for small
    /// instances).
    pub labels: bool,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            width: 800,
            height: 480,
            margin: 24,
            labels: false,
        }
    }
}

/// Deterministic categorical color for buffer `i`.
fn color(i: usize) -> String {
    // Golden-angle hue walk: adjacent ids get well-separated hues.
    let hue = (i as f64 * 137.507_764) % 360.0;
    format!("hsl({hue:.0}, 65%, 62%)")
}

fn header(style: &Style) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"10\">\n\
         <rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n",
        w = style.width,
        h = style.height
    )
}

/// Renders a solved packing: time on the x axis, address on the y axis
/// (origin at the bottom, like the paper's figures), one rectangle per
/// buffer, with the capacity line on top.
///
/// # Panics
///
/// Panics if `solution` does not match `problem`'s arity.
pub fn render_packing(problem: &Problem, solution: &Solution, style: &Style) -> String {
    assert_eq!(solution.len(), problem.len(), "solution arity mismatch");
    let mut out = header(style);
    let plot_w = f64::from(style.width - 2 * style.margin);
    let plot_h = f64::from(style.height - 2 * style.margin);
    let margin = f64::from(style.margin);
    let horizon = f64::from(problem.horizon().max(1));
    let cap = problem.capacity().max(1) as f64;

    let x = |t: f64| margin + t / horizon * plot_w;
    let y = |addr: f64| margin + (1.0 - addr / cap) * plot_h;

    // Capacity frame.
    let _ = writeln!(
        out,
        "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" \
         fill=\"none\" stroke=\"#444\" stroke-dasharray=\"4 3\"/>",
        margin, margin
    );
    for (id, buffer) in problem.iter() {
        let addr = solution.address(id) as f64;
        let x0 = x(f64::from(buffer.start()));
        let x1 = x(f64::from(buffer.end()));
        let y_top = y(addr + buffer.size() as f64);
        let h = y(addr) - y_top;
        let _ = writeln!(
            out,
            "<rect x=\"{x0:.1}\" y=\"{y_top:.1}\" width=\"{:.1}\" height=\"{h:.1}\" \
             fill=\"{}\" stroke=\"#333\" stroke-width=\"0.6\"><title>{id}: t=[{}, {}) \
             size={} @ {}</title></rect>",
            x1 - x0,
            color(id.index()),
            buffer.start(),
            buffer.end(),
            buffer.size(),
            solution.address(id),
        );
        if style.labels {
            let _ = writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
                (x0 + x1) / 2.0,
                y_top + h / 2.0 + 3.0,
                id.index(),
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the problem without placements: each buffer as a bar at its
/// live range, stacked by a greedy lane assignment (purely for reading
/// the input's structure, like the paper's Figure 19 inset).
pub fn render_problem(problem: &Problem) -> String {
    let style = Style::default();
    // Lane assignment: lowest-fit in id order (not a real packing — just
    // for display — so capacity is ignored).
    let mut addresses = Vec::with_capacity(problem.len());
    let mut placed: Vec<(u32, u32, u64, u64)> = Vec::new(); // start, end, addr, size
    let mut peak = 1u64;
    for (_, b) in problem.iter() {
        let mut addr = 0u64;
        let mut moved = true;
        while moved {
            moved = false;
            for &(s, e, a, sz) in &placed {
                let overlap_time = b.start() < e && s < b.end();
                if overlap_time && addr < a + sz && a < addr + b.size() {
                    addr = a + sz;
                    moved = true;
                }
            }
        }
        addresses.push(addr);
        placed.push((b.start(), b.end(), addr, b.size()));
        peak = peak.max(addr + b.size());
    }
    let display = problem
        .with_capacity(peak)
        .expect("display capacity covers the lane packing");
    render_packing(&display, &Solution::new(addresses), &style)
}

/// Renders one or more live-memory series against the capacity line —
/// the paper's Figure 3. Each series is `(label, per-time-step values)`.
pub fn render_series(problem: &Problem, series: &[(&str, Vec<u64>)], style: &Style) -> String {
    let mut out = header(style);
    let plot_w = f64::from(style.width - 2 * style.margin);
    let plot_h = f64::from(style.height - 2 * style.margin);
    let margin = f64::from(style.margin);
    let horizon = problem.horizon().max(1) as f64;
    let max_val = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .chain([problem.capacity()])
        .max()
        .unwrap_or(1)
        .max(1) as f64;

    let x = |t: f64| margin + t / horizon * plot_w;
    let y = |v: f64| margin + (1.0 - v / max_val) * plot_h;

    // Capacity line.
    let _ = writeln!(
        out,
        "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#c00\" \
         stroke-dasharray=\"6 3\"/><text x=\"{:.1}\" y=\"{:.1}\" fill=\"#c00\">limit</text>",
        x(0.0),
        y(problem.capacity() as f64),
        x(horizon),
        y(problem.capacity() as f64),
        x(0.0) + 4.0,
        y(problem.capacity() as f64) - 4.0,
    );
    for (i, (label, values)) in series.iter().enumerate() {
        let mut path = String::new();
        for (t, &v) in values.iter().enumerate() {
            let cmd = if t == 0 { 'M' } else { 'L' };
            let _ = write!(path, "{cmd}{:.1},{:.1} ", x(t as f64), y(v as f64));
        }
        let stroke = color(i * 7 + 1);
        let _ = writeln!(
            out,
            "<path d=\"{path}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.5\"/>"
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{stroke}\">{label}</text>",
            margin + 6.0,
            margin + 14.0 + 12.0 * i as f64,
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a solve trace (see `tela-trace`) as an SVG timeline: one
/// swim-lane per layer (`search`, `portfolio`, `ladder`, ...), spans as
/// horizontal bars from begin to end timestamp, instant events as
/// vertical ticks. Works for both wall-clock and logical-clock traces —
/// the x axis is simply the trace's own clock units.
///
/// Feed it a live [`tela_trace::Tracer::snapshot`] or a trace re-read
/// from JSONL with [`tela_trace::parse_jsonl`]:
///
/// ```
/// use tela_trace::Tracer;
///
/// let tracer = Tracer::logical();
/// let span = tracer.begin("search", "solve", vec![]);
/// tracer.instant("audit", "needs_search", vec![]);
/// tracer.end(span, "search", "solve", vec![]);
/// let svg = tela_viz::render_trace_timeline(&tracer.snapshot().unwrap(), &Default::default());
/// assert!(svg.contains("</svg>"));
/// ```
pub fn render_trace_timeline(trace: &tela_trace::Trace, style: &Style) -> String {
    use std::collections::BTreeMap;
    use tela_trace::Phase;

    let mut out = header(style);
    let events = &trace.events;
    // Swim-lanes: one per layer, in order of first appearance.
    let mut lanes: Vec<&str> = Vec::new();
    for e in events {
        if !lanes.iter().any(|&l| l == e.layer.as_ref()) {
            lanes.push(e.layer.as_ref());
        }
    }
    let lane_of = |layer: &str| lanes.iter().position(|&l| l == layer).unwrap_or(0);

    let t0 = events.iter().map(|e| e.ts).min().unwrap_or(0);
    let t1 = events.iter().map(|e| e.ts).max().unwrap_or(0).max(t0 + 1);
    let plot_w = f64::from(style.width - 2 * style.margin);
    let plot_h = f64::from(style.height - 2 * style.margin);
    let margin = f64::from(style.margin);
    let label_w = 80.0_f64.min(plot_w / 4.0);
    let x = |ts: u64| margin + label_w + (ts - t0) as f64 / (t1 - t0) as f64 * (plot_w - label_w);
    let rows = lanes.len().max(1) as f64;
    let row_h = plot_h / rows;
    let y = |lane: usize| margin + lane as f64 * row_h;

    // Lane labels and separators.
    for (i, lane) in lanes.iter().enumerate() {
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\">{lane}</text>",
            margin,
            y(i) + row_h / 2.0 + 3.0
        );
        let _ = writeln!(
            out,
            "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>",
            margin,
            y(i),
            margin + plot_w,
            y(i)
        );
    }

    // Spans: pair each End with its Begin by span id; Begins still open
    // at the end of the trace run to the right edge.
    let mut open: BTreeMap<u64, &tela_trace::Event> = BTreeMap::new();
    let bar_h = (row_h * 0.6).max(4.0);
    let draw_bar = |out: &mut String, begin: &tela_trace::Event, end_ts: u64| {
        let lane = lane_of(begin.layer.as_ref());
        let x0 = x(begin.ts);
        let w = (x(end_ts) - x0).max(1.0);
        let _ = writeln!(
            out,
            "<rect x=\"{x0:.1}\" y=\"{:.1}\" width=\"{w:.1}\" height=\"{bar_h:.1}\" \
             fill=\"{}\" stroke=\"#333\" stroke-width=\"0.5\"><title>{}.{} \
             [{} → {end_ts}]</title></rect>",
            y(lane) + (row_h - bar_h) / 2.0,
            color(lane),
            begin.layer,
            begin.name,
            begin.ts,
        );
    };
    for e in events {
        match e.phase {
            Phase::Begin => {
                open.insert(e.span, e);
            }
            Phase::End => {
                if let Some(begin) = open.remove(&e.span) {
                    draw_bar(&mut out, begin, e.ts);
                }
            }
            Phase::Instant => {
                let lane = lane_of(e.layer.as_ref());
                let xe = x(e.ts);
                let _ = writeln!(
                    out,
                    "<line x1=\"{xe:.1}\" y1=\"{:.1}\" x2=\"{xe:.1}\" y2=\"{:.1}\" \
                     stroke=\"#222\" stroke-width=\"1.2\"><title>{}.{} @ {}</title></line>",
                    y(lane) + row_h * 0.25,
                    y(lane) + row_h * 0.75,
                    e.layer,
                    e.name,
                    e.ts,
                );
            }
        }
    }
    let still_open: Vec<&tela_trace::Event> = open.into_values().collect();
    for begin in still_open {
        draw_bar(&mut out, begin, t1);
    }
    out.push_str("</svg>\n");
    out
}

/// One frame of a flamegraph: a named node whose width is proportional
/// to `value` (inclusive of its children). Built by callers — typically
/// `tela-prof` collapsing a span tree — so this crate stays agnostic
/// about where the hierarchy came from.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameFrame {
    /// Frame label (e.g. `search.solve`).
    pub name: String,
    /// Inclusive value (clock units); must be ≥ the sum of children.
    pub value: u64,
    /// Nested frames, drawn left-to-right in order above this one.
    pub children: Vec<FlameFrame>,
}

impl FlameFrame {
    /// A leaf frame.
    pub fn new(name: impl Into<String>, value: u64) -> Self {
        FlameFrame {
            name: name.into(),
            value,
            children: Vec::new(),
        }
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameFrame::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Renders a flamegraph: the root frame spans the full width at the
/// bottom, children stack upward, each frame's width proportional to its
/// inclusive value. Deterministic — frames are drawn in the order the
/// caller provides — and self-contained like every renderer here.
/// Tooltips carry `name: value (percent of root)`.
pub fn render_flamegraph(root: &FlameFrame, style: &Style) -> String {
    let mut out = header(style);
    let plot_w = f64::from(style.width - 2 * style.margin);
    let plot_h = f64::from(style.height - 2 * style.margin);
    let margin = f64::from(style.margin);
    let depth = root.depth();
    let row_h = (plot_h / depth.max(1) as f64).min(18.0);
    let total = root.value.max(1) as f64;
    let base_y = margin + plot_h;

    // Same-name frames share a color (FNV-1a over the name), so a span
    // split across branches still reads as one thing.
    let color_of = |name: &str| {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        color(h as usize % 4096)
    };

    // (frame, cumulative offset in root units, depth) — explicit stack,
    // pushed in reverse so siblings render left-to-right.
    let mut stack: Vec<(&FlameFrame, u64, usize)> = vec![(root, 0, 0)];
    while let Some((frame, offset, level)) = stack.pop() {
        let x0 = margin + offset as f64 / total * plot_w;
        let w = frame.value as f64 / total * plot_w;
        let y_top = base_y - (level + 1) as f64 * row_h;
        let pct = frame.value as f64 / total * 100.0;
        let _ = writeln!(
            out,
            "<rect x=\"{x0:.1}\" y=\"{y_top:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"><title>{}: {} ({pct:.1}%)\
             </title></rect>",
            w.max(0.5),
            row_h - 1.0,
            color_of(&frame.name),
            frame.name,
            frame.value,
        );
        // Only label frames wide enough to hold readable text.
        if w > 6.0 * frame.name.len() as f64 {
            let _ = writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                x0 + 3.0,
                y_top + row_h / 2.0 + 3.0,
                frame.name,
            );
        }
        let mut child_offset = offset;
        let mut children: Vec<(&FlameFrame, u64, usize)> = Vec::with_capacity(frame.children.len());
        for child in &frame.children {
            children.push((child, child_offset, level + 1));
            child_offset += child.value;
        }
        stack.extend(children.into_iter().rev());
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    fn solved_figure1() -> (Problem, Solution) {
        let p = examples::figure1();
        let s = Solution::new(vec![0, 2, 1, 0, 2, 3, 0, 2, 2, 0]);
        assert!(s.validate(&p).is_ok());
        (p, s)
    }

    #[test]
    fn packing_svg_is_well_formed() {
        let (p, s) = solved_figure1();
        let svg = render_packing(&p, &s, &Style::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per buffer plus background and frame.
        assert_eq!(svg.matches("<rect").count(), p.len() + 2);
        // Tooltips carry buffer metadata.
        assert!(svg.contains("<title>b0:"));
    }

    #[test]
    fn labels_toggle_emits_text() {
        let (p, s) = solved_figure1();
        let style = Style {
            labels: true,
            ..Style::default()
        };
        let svg = render_packing(&p, &s, &style);
        assert!(svg.matches("<text").count() >= p.len());
    }

    #[test]
    fn problem_rendering_never_needs_a_solution() {
        let svg = render_problem(&examples::figure1());
        assert!(svg.contains("</svg>"));
        let svg = render_problem(&examples::aligned());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn series_rendering_includes_all_labels() {
        let p = examples::tiny();
        let series = vec![
            ("bfc", vec![3u64, 8, 16, 10]),
            ("solver", vec![2u64, 8, 12, 9]),
        ];
        let svg = render_series(&p, &series, &Style::default());
        assert!(svg.contains(">bfc<"));
        assert!(svg.contains(">solver<"));
        assert!(svg.contains("limit"));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn colors_are_deterministic_and_distinct() {
        assert_eq!(color(3), color(3));
        assert_ne!(color(3), color(4));
    }

    #[test]
    fn empty_problem_renders() {
        let p = Problem::builder(10).build().unwrap();
        let svg = render_packing(&p, &Solution::new(vec![]), &Style::default());
        assert!(svg.contains("</svg>"));
        let svg = render_series(&p, &[], &Style::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn trace_timeline_draws_lanes_spans_and_ticks() {
        let tracer = tela_trace::Tracer::logical();
        let outer = tracer.begin("search", "solve", vec![]);
        tracer.instant("audit", "needs_search", vec![]);
        let inner = tracer.begin("cp", "solve", vec![]);
        tracer.end(inner, "cp", "solve", vec![]);
        tracer.end(outer, "search", "solve", vec![]);
        let svg = render_trace_timeline(&tracer.snapshot().unwrap(), &Style::default());
        // Three lanes in first-appearance order, two span bars (plus the
        // background rect), one instant tick plus lane separators.
        assert!(svg.contains(">search<"));
        assert!(svg.contains(">audit<"));
        assert!(svg.contains(">cp<"));
        assert_eq!(svg.matches("<title>").count(), 3);
        assert!(svg.contains("<title>search.solve"));
        assert!(svg.contains("<title>audit.needs_search"));
    }

    #[test]
    fn trace_timeline_closes_unfinished_spans_at_the_edge() {
        let tracer = tela_trace::Tracer::logical();
        let _open = tracer.begin("portfolio", "race", vec![]);
        tracer.instant("portfolio", "variant_panicked", vec![]);
        let svg = render_trace_timeline(&tracer.snapshot().unwrap(), &Style::default());
        assert!(svg.contains("<title>portfolio.race"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn trace_timeline_handles_empty_trace() {
        let tracer = tela_trace::Tracer::logical();
        let svg = render_trace_timeline(&tracer.snapshot().unwrap(), &Style::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("</svg>"));
    }

    fn sample_flame() -> FlameFrame {
        FlameFrame {
            name: "all".into(),
            value: 100,
            children: vec![
                FlameFrame {
                    name: "search.solve".into(),
                    value: 70,
                    children: vec![FlameFrame::new("cp.solve", 50)],
                },
                FlameFrame::new("heuristic.greedy", 20),
            ],
        }
    }

    #[test]
    fn flamegraph_draws_every_frame_with_tooltips() {
        let svg = render_flamegraph(&sample_flame(), &Style::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 4 frames plus the background rect.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("<title>all: 100 (100.0%)"));
        assert!(svg.contains("<title>search.solve: 70 (70.0%)"));
        assert!(svg.contains("<title>cp.solve: 50 (50.0%)"));
        assert!(svg.contains("<title>heuristic.greedy: 20 (20.0%)"));
    }

    #[test]
    fn flamegraph_is_deterministic_and_name_colored() {
        let a = render_flamegraph(&sample_flame(), &Style::default());
        let b = render_flamegraph(&sample_flame(), &Style::default());
        assert_eq!(a, b);
        // Two frames with the same name get the same fill.
        let twins = FlameFrame {
            name: "root".into(),
            value: 10,
            children: vec![FlameFrame::new("x", 5), FlameFrame::new("x", 5)],
        };
        let svg = render_flamegraph(&twins, &Style::default());
        let fills: Vec<&str> = svg
            .lines()
            .filter(|l| l.contains("<title>x:"))
            .map(|l| {
                l.split("fill=\"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(fills.len(), 2);
        assert_eq!(fills[0], fills[1]);
    }

    #[test]
    fn flamegraph_handles_zero_value_root() {
        let svg = render_flamegraph(&FlameFrame::new("empty", 0), &Style::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn trace_timeline_is_deterministic() {
        let make = || {
            let tracer = tela_trace::Tracer::logical();
            let s = tracer.begin("search", "solve", vec![("k".into(), 1u64.into())]);
            tracer.end(s, "search", "solve", vec![]);
            render_trace_timeline(&tracer.snapshot().unwrap(), &Style::default())
        };
        assert_eq!(make(), make());
    }
}
