//! Quickstart: allocate a handful of buffers with the TelaMalloc
//! pipeline.
//!
//! Run with: `cargo run --example quickstart`

use tela_model::{Budget, Buffer, Problem};
use telamalloc::{Allocator, Stage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten buffers with fixed live ranges sharing a 4-unit memory — the
    // paper's Figure 1 running example.
    let problem = tela_model::examples::figure1();
    println!(
        "problem: {} buffers, capacity {}",
        problem.len(),
        problem.capacity()
    );
    println!(
        "peak contention (lower bound on memory): {}",
        problem.max_contention()
    );

    // The production pipeline: greedy heuristic first, TelaMalloc's
    // hybrid heuristic x CP-solver search when the heuristic fails.
    let allocator = Allocator::default();
    let result = allocator.allocate(&problem, &Budget::steps(100_000));
    let solution = result.outcome.solution().ok_or("figure1 is solvable")?;
    println!(
        "solved by {} in {} steps ({} backtracks)",
        match result.stage {
            Stage::Heuristic => "the greedy heuristic",
            Stage::TelaMalloc => "the TelaMalloc search",
        },
        result.stats.steps,
        result.stats.total_backtracks(),
    );

    for (id, buffer) in problem.iter() {
        println!(
            "  buffer {id}: t=[{}, {}) size={} -> address {}",
            buffer.start(),
            buffer.end(),
            buffer.size(),
            solution.address(id)
        );
    }
    let peak = solution.validate(&problem)?;
    println!("packing peak: {peak} / capacity {}", problem.capacity());

    // Building your own problem is a few lines:
    let custom = Problem::builder(1024)
        .buffer(Buffer::new(0, 8, 512))
        .buffer(Buffer::new(4, 12, 512))
        .buffer(Buffer::new(8, 16, 256).with_align(32))
        .build()?;
    let result = allocator.allocate(&custom, &Budget::steps(10_000));
    println!(
        "custom problem: {}",
        if result.outcome.is_solved() {
            "solved"
        } else {
            "failed"
        }
    );
    Ok(())
}
