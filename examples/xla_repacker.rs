//! The TPUv4/XLA scenario (paper §2.3, §7.4): the compiler
//! opportunistically promotes access-intensive tensors into on-chip
//! CMEM, calling the allocator as a *repacker* in its inner loop. A
//! better repacker fits more access-weighted bytes into SRAM, so the
//! compiled program itself runs faster.
//!
//! Run with: `cargo run --release --example xla_repacker`

use tela_xla::{assign_memory_space, execution_time, tpu_workloads, MemoryConfig, Packer};

fn main() {
    let config = MemoryConfig::default();
    println!(
        "SRAM capacity {} units, SRAM/HBM access cost ratio {:.1}\n",
        config.sram_capacity,
        config.sram_cost / config.hbm_cost
    );

    for program in tpu_workloads(0) {
        let best_fit = assign_memory_space(&program, &config, Packer::BestFit);
        let tela = assign_memory_space(&program, &config, Packer::TelaMalloc);
        let t_bf = execution_time(&program, &best_fit, &config);
        let t_tela = execution_time(&program, &tela, &config);
        let traffic = program.total_traffic().max(1) as f64;
        println!("{}:", program.name);
        println!(
            "  best-fit repacker:   {:>4} tensors in SRAM, {:>5.1}% of traffic, exec time {:.0}",
            best_fit.sram_buffers,
            best_fit.sram_traffic as f64 / traffic * 100.0,
            t_bf
        );
        println!(
            "  telamalloc repacker: {:>4} tensors in SRAM, {:>5.1}% of traffic, exec time {:.0}",
            tela.sram_buffers,
            tela.sram_traffic as f64 / traffic * 100.0,
            t_tela
        );
        println!(
            "  program speedup: {:+.2}%\n",
            (t_bf / t_tela - 1.0) * 100.0
        );
    }
}
