//! End-to-end mini-compiler flow (paper §2.3): graph → schedule →
//! buffers → TelaMalloc packing, with the DRAM-spill fallback when the
//! scratchpad is too small.
//!
//! Run with: `cargo run --release --example pixel_compiler`

use tela_pixel::ir::zoo;
use tela_pixel::{Compiler, CompilerSettings};
use telamalloc::Stage;

fn main() {
    let models: [(&str, tela_pixel::ir::Graph); 3] = [
        ("mobilenet-like", zoo::mobilenet_like(96, 8)),
        ("unet-like", zoo::unet_like(96, 3)),
        ("detector-like", zoo::detector_like(96, 4)),
    ];

    for (name, graph) in &models {
        println!("== {name}: {} ops", graph.len());
        for scratchpad_kib in [2048u64, 512, 192, 96] {
            let settings = CompilerSettings {
                scratchpad_bytes: scratchpad_kib * 1024,
                ..CompilerSettings::default()
            };
            match Compiler::new(settings).compile(graph) {
                Ok(c) => {
                    let stage = match c.stage {
                        Stage::Heuristic => "heuristic",
                        Stage::TelaMalloc => "telamalloc",
                    };
                    println!(
                        "  {scratchpad_kib:>5} KiB: ok via {stage:10} ({} buffers, {} spills, {} KiB moved to DRAM)",
                        c.problem.len(),
                        c.spills.evicted.len(),
                        c.spills.bytes_spilled / 1024,
                    );
                }
                Err(e) => println!("  {scratchpad_kib:>5} KiB: FAILED ({e})"),
            }
        }
        println!();
    }
    println!("smaller scratchpads force the spill fallback the paper's intro");
    println!("describes: memory pressure is traded for extra DMA transfers.");
}
