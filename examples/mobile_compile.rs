//! The Pixel 6 scenario (paper §2.3-§2.4): models are compiled
//! *on-the-fly, on-device* when an app loads them — think camera filters
//! downloaded and compiled while the user browses. Compilation delays
//! are user-visible, so the allocator must answer in milliseconds.
//!
//! This example simulates an app loading all eleven evaluation models
//! and reports the allocation latency of each, showing the fast
//! heuristic path and the TelaMalloc fallback.
//!
//! Run with: `cargo run --release --example mobile_compile`

use std::time::{Duration, Instant};

use tela_model::Budget;
use tela_workloads::{problem_with_slack, ModelKind};
use telamalloc::{Allocator, Stage};

fn main() {
    println!(
        "simulated on-device compilation of {} models\n",
        ModelKind::PIXEL6.len()
    );
    let allocator = Allocator::default();
    // A user-visible delay budget: a filter should be ready instantly.
    let user_patience = Duration::from_millis(500);

    let mut total = Duration::ZERO;
    for kind in ModelKind::PIXEL6 {
        let problem = problem_with_slack(kind.generate(0), 10);
        let budget = Budget::steps(2_000_000).with_timeout(user_patience);
        let t0 = Instant::now();
        let result = allocator.allocate(&problem, &budget);
        let elapsed = t0.elapsed();
        total += elapsed;
        println!(
            "{:18} {:>10.2?}  via {:10}  {}",
            kind.name(),
            elapsed,
            match result.stage {
                Stage::Heuristic => "heuristic",
                Stage::TelaMalloc => "telamalloc",
            },
            if result.outcome.is_solved() {
                "ready"
            } else {
                "FAILED (would fall back to sharding)"
            },
        );
    }
    println!("\ntotal allocation time for all models: {total:.2?}");
    println!("(the paper's replaced ILP stage took tens of seconds to minutes on");
    println!("the hardest of these, blocking the app's UI)");
}
