//! Conflict explanations and minimization: how the CP solver tells the
//! search *why* a placement failed (paper §5.4), and how the deletion
//! filter shrinks that explanation to the placements that actually
//! matter.
//!
//! Run with: `cargo run --example conflict_analysis`

use tela_cp::{explain::minimize_conflict, CpSolver};
use tela_model::{Buffer, BufferId, Problem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 26-unit memory. Three placements, then a block that cannot sit
    // at address 0.
    let problem = Problem::builder(26)
        .buffer(Buffer::new(0, 6, 6)) // 0: occupies [0, 6) early
        .buffer(Buffer::new(4, 10, 12)) // 1: occupies [6, 18)
        .buffer(Buffer::new(12, 14, 6)) // 2: late, irrelevant
        .buffer(Buffer::new(5, 9, 7)) // 3: the failing block
        .build()?;

    let mut solver = CpSolver::new(&problem)?;
    let placements = [
        (BufferId::new(0), 0u64),
        (BufferId::new(1), 6),
        (BufferId::new(2), 0),
    ];
    for &(id, addr) in &placements {
        solver.assign(id, addr)?;
        println!("placed {id} at {addr}");
    }

    // Block 3 overlaps blocks 0 and 1 in time; at address 0 it would
    // collide with both.
    let failing = (BufferId::new(3), 0);
    match solver.assign(failing.0, failing.1) {
        Ok(()) => println!("\nblock 3 fit at address 0 after all"),
        Err(conflict) => {
            println!("\nplacing block 3 at 0 failed");
            println!("solver explanation (culprits, in placement order):");
            for c in &conflict.culprits {
                println!("  {c}");
            }
            let minimal = minimize_conflict(&problem, &placements, failing, &conflict.culprits);
            println!("irreducible conflict set after deletion filtering:");
            for c in &minimal {
                println!("  {c}  <- this placement alone reproduces the failure");
            }
        }
    }

    // The lowest feasible position query (§5.2) shows where block 3
    // *can* go given the current placements.
    match solver.min_feasible_pos(BufferId::new(3)) {
        Some(pos) => println!("\nsolver-guided placement would put block 3 at {pos}"),
        None => println!("\nblock 3 has no feasible position at all -> major backtrack"),
    }
    Ok(())
}
