//! Learned backtracking end to end (paper §6): collect imitation-
//! learning data against an exact-solver oracle, train a gradient-
//! boosted forest, and plug it into the search as the backtrack policy.
//!
//! Run with: `cargo run --release --example learned_backtracking`

use tela_learned::{train_policy, TrainOptions};
use tela_model::{Budget, Problem};
use tela_workloads::sweep::certified_solvable;
use telamalloc::{solve, solve_with, BacktrackPolicy, NullObserver, TelaConfig};

fn main() {
    // Train on a handful of certified-solvable tight instances.
    let train: Vec<(String, Problem)> = (100..106u64)
        .map(|seed| (format!("train-{seed}"), certified_solvable(seed)))
        .collect();
    println!(
        "training the backtracking model on {} instances...",
        train.len()
    );
    let options = TrainOptions {
        slack_percents: vec![0, 1, 3],
        search_budget: Budget::steps(15_000),
        ..TrainOptions::default()
    };
    let policy = train_policy(&train, &options);
    println!("trained a {}-tree forest\n", policy.model().num_trees());

    // Evaluate on unseen instances.
    let config = TelaConfig::default();
    for seed in [10u64, 39, 53] {
        let problem = certified_solvable(seed);
        let budget = Budget::steps(50_000);
        let base = solve(&problem, &budget, &config);
        let mut p = policy.clone();
        let mut obs = NullObserver;
        let ml = solve_with(
            &problem,
            &budget,
            &config,
            &mut p as &mut dyn BacktrackPolicy,
            &mut obs,
        );
        println!(
            "instance {seed}: default {} backtracks ({}), learned {} backtracks ({})",
            base.stats.total_backtracks(),
            if base.outcome.is_solved() {
                "solved"
            } else {
                "capped"
            },
            ml.stats.total_backtracks(),
            if ml.outcome.is_solved() {
                "solved"
            } else {
                "capped"
            },
        );
    }
    println!("\n(the model only runs on major backtracks; inputs that never get");
    println!("stuck pay nothing for it — see `cargo run -p tela-bench --bin fig16`)");
}
