//! Contention-based grouping (paper §5.3): how TelaMalloc decomposes a
//! model into phases of high contention separated by troughs, and into
//! time-disjoint sub-problems it can solve independently.
//!
//! Run with: `cargo run --release --example contention_phases`

use tela_model::{split_independent, PhasePartition};
use tela_workloads::{problem_with_slack, ModelKind};

fn main() {
    let problem = problem_with_slack(ModelKind::OpenPose.generate(0), 10);
    println!(
        "OpenPose-like workload: {} buffers over {} time steps, capacity {}\n",
        problem.len(),
        problem.horizon(),
        problem.capacity()
    );

    // 1. Time-disjoint sub-problems: no buffer crosses the split point,
    //    so each group is an independent allocation problem.
    let groups = split_independent(&problem);
    println!("independent sub-problems: {}", groups.len());
    for (i, g) in groups.iter().enumerate().take(5) {
        println!("  group {i}: {} buffers", g.len());
    }

    // 2. Within the schedule, phases of high contention found by the
    //    threshold-sweep algorithm (Figure 9).
    let partition = PhasePartition::compute(&problem);
    println!("\ncontention phases: {}", partition.len());
    let mut by_threshold: Vec<(u32, usize, usize)> = Vec::new();
    for phase in partition.phases() {
        match by_threshold
            .iter_mut()
            .find(|(t, _, _)| *t == phase.threshold_percent)
        {
            Some((_, count, blocks)) => {
                *count += 1;
                *blocks += phase.blocks.len();
            }
            None => by_threshold.push((phase.threshold_percent, 1, phase.blocks.len())),
        }
    }
    println!("  threshold%  phases  blocks");
    for (threshold, count, blocks) in by_threshold {
        println!("  {threshold:>9}%  {count:>6}  {blocks:>6}");
    }

    // The search places blocks phase by phase: the densest regions are
    // committed first, while the solver still has maximum freedom.
    let first = &partition.phases()[0];
    println!(
        "\nfirst phase: threshold {}%, time [{}, {}), {} blocks placed before all others",
        first.threshold_percent,
        first.start,
        first.end,
        first.blocks.len()
    );
}
