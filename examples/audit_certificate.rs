//! Static infeasibility certificates: reject impossible allocation
//! problems before any search runs, with an independently checkable
//! explanation.
//!
//! Run with: `cargo run --example audit_certificate`

use tela_audit::{preflight, Verdict};
use tela_model::{Budget, Buffer, Problem};
use telamalloc::Allocator;

fn audit(name: &str, problem: &Problem) {
    println!(
        "{name}: {} buffers, capacity {}",
        problem.len(),
        problem.capacity()
    );
    match preflight(problem) {
        Verdict::ProvablyInfeasible(cert) => {
            println!("  provably infeasible: {cert}");
            assert!(cert.verify(problem), "certificates are self-checking");
            println!("  (certificate re-verified against the problem)");
        }
        Verdict::TriviallyFeasible(solution) => {
            let peak = solution
                .validate(problem)
                .expect("trivial solutions always validate");
            println!("  trivially feasible, packed without search; peak {peak}");
        }
        Verdict::NeedsSearch(stats) => {
            println!(
                "  needs search: {} overlapping pairs, contention {}/{}",
                stats.overlapping_pairs,
                stats.max_contention,
                problem.capacity()
            );
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A plain overload: three size-3 buffers alive at once in 8 units.
    audit("contention overload", &tela_model::examples::infeasible());

    // Subtler: contention (5 + 6 = 11) fits the 12-unit memory, but both
    // buffers need 8-byte alignment, so whichever stacks on top starts
    // at address 8 and runs past the end. Only the alignment-aware
    // pigeonhole argument sees this.
    let aligned_squeeze = Problem::builder(12)
        .buffer(Buffer::new(0, 4, 5).with_align(8))
        .buffer(Buffer::new(0, 4, 6).with_align(8))
        .build()?;
    audit("alignment squeeze", &aligned_squeeze);

    // Degenerate the other way: buffers that never coexist all share
    // address 0 — no search needed.
    let disjoint = Problem::builder(64)
        .buffers((0..4).map(|i| Buffer::new(i * 4, i * 4 + 4, 48)))
        .build()?;
    audit("time-disjoint chain", &disjoint);

    // The paper's Figure 1 is tight but feasible: the audit cannot
    // decide it and hands it to the search.
    audit("figure 1", &tela_model::examples::figure1());

    // The full allocator runs the same preflight, so infeasible inputs
    // fail in zero search steps and carry the certificate outward.
    let result = Allocator::default().allocate(&aligned_squeeze, &Budget::steps(100_000));
    let cert = result
        .certificate
        .expect("the pipeline surfaces the audit's witness");
    println!(
        "pipeline rejected the squeeze in {} steps: {cert}",
        result.stats.steps
    );
    Ok(())
}
