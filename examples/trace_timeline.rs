//! End-to-end observability demo: run a portfolio + escalation-ladder
//! solve with tracing enabled, export the structured trace as JSONL,
//! print the aggregated metrics and the replayable text timeline, and
//! render the SVG swim-lane view.
//!
//! Run with: `cargo run --example trace_timeline`
//!
//! Set `TELA_TRACE=wall` for real nanosecond timestamps; the default
//! here is the logical clock, whose traces are byte-identical across
//! runs (that is what the determinism test in `crates/core/tests`
//! checks).

use tela_model::{examples, Budget, Buffer, Problem};
use tela_trace::{parse_jsonl, render_metrics, render_timeline, write_jsonl, Tracer};
use telamalloc::{Allocator, EscalationLadder, SpillHook, TelaConfig};

/// Evicts the last buffer each round, like a compiler spilling one
/// tensor to DRAM per retry.
struct DropLast {
    buffers: Vec<Buffer>,
    capacity: u64,
}

impl SpillHook for DropLast {
    fn spill(&mut self, _round: u32) -> Option<Problem> {
        self.buffers.pop()?;
        Problem::new(self.buffers.clone(), self.capacity).ok()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Honor TELA_TRACE if set (e.g. `wall`); otherwise trace with the
    // deterministic logical clock so the demo always has output.
    let tracer = match Tracer::from_env() {
        t if t.enabled() => t,
        _ => Tracer::logical(),
    };
    let config = TelaConfig {
        tracer: tracer.clone(),
        ..TelaConfig::default()
    };

    // Scenario 1: the tight-but-feasible Figure 1 instance through the
    // production pipeline (greedy fails, the search solves it).
    let figure1 = examples::figure1();
    let result = Allocator::new(config.clone()).allocate(&figure1, &Budget::steps(200_000));
    println!(
        "figure1: {} in {} steps",
        result.outcome.label(),
        result.stats.steps
    );

    // Scenario 2: an overloaded instance through the full escalation
    // ladder. Six fully-overlapping size-2 buffers in 8 units of memory:
    // the preflight proves each attempt infeasible (certificate events),
    // and two spill rounds shrink the problem until it fits.
    let buffers: Vec<Buffer> = (0..6).map(|_| Buffer::new(0, 4, 2)).collect();
    let overloaded = Problem::new(buffers.clone(), 8)?;
    let mut hook = DropLast {
        buffers,
        capacity: 8,
    };
    let ladder = EscalationLadder::new(config);
    let result = ladder.solve_with_spill(overloaded, &Budget::steps(200_000), &mut hook);
    println!(
        "overloaded: {} after {} spill rounds\n",
        result.outcome.label(),
        result.spill_rounds
    );

    // Export: one JSONL artifact carrying the full event stream plus
    // every metric series; `parse_jsonl` round-trips it losslessly.
    let trace = tracer.snapshot().expect("tracer is enabled");
    let jsonl = write_jsonl(&trace);
    let reparsed = parse_jsonl(&jsonl)?;
    assert_eq!(reparsed.events.len(), trace.events.len());
    let path = std::env::temp_dir().join("tela_trace_timeline.jsonl");
    std::fs::write(&path, &jsonl)?;
    println!("wrote {} ({} events)", path.display(), trace.events.len());

    // The SVG swim-lane view (one lane per layer).
    let svg = tela_viz::render_trace_timeline(&trace, &Default::default());
    let svg_path = std::env::temp_dir().join("tela_trace_timeline.svg");
    std::fs::write(&svg_path, svg)?;
    println!("wrote {}\n", svg_path.display());

    println!("== metrics ==");
    print!("{}", render_metrics(&trace.metrics));
    assert!(
        trace.metrics.len() >= 10,
        "a portfolio + ladder solve populates at least 10 metric series"
    );

    println!("\n== timeline ==");
    print!("{}", render_timeline(&trace));
    Ok(())
}
